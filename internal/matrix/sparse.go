package matrix

import (
	"fmt"
	"sort"
)

// Coord is a single (row, col, value) entry of a sparse matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// Sparse accumulates entries of an n×n sparse matrix in coordinate form with
// duplicate summing. It is strictly the assembly-side representation used by
// MNA stamping: once stamping completes, callers freeze it with Compile into
// an immutable CSR matrix, and all hot loops run on that. Keeping the
// map-backed accumulator out of the simulation paths removes both the
// per-entry hash lookups and the historical hazard of the sorted-key cache
// going stale under interleaved Add/MulVec.
type Sparse struct {
	n       int
	entries map[int64]float64
	// keys caches the sorted entry keys so value-accumulating iterations
	// (MulVec, Entries) run in a fixed order: map iteration order is
	// randomized per range statement, and letting it pick the summation
	// order makes results differ in the last few ulps from one run to the
	// next. Lazily built, invalidated whenever a new key appears.
	keys []int64
}

// NewSparse returns an empty n×n sparse accumulator.
func NewSparse(n int) *Sparse {
	if n < 0 {
		panic("matrix: NewSparse negative size")
	}
	return &Sparse{n: n, entries: make(map[int64]float64)}
}

// Size returns n for the n×n matrix.
func (s *Sparse) Size() int { return s.n }

func (s *Sparse) key(i, j int) int64 {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		panic(fmt.Sprintf("matrix: sparse index (%d,%d) out of range n=%d", i, j, s.n))
	}
	return int64(i)*int64(s.n) + int64(j)
}

// Add accumulates v into entry (i, j).
func (s *Sparse) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	k := s.key(i, j)
	if _, ok := s.entries[k]; !ok {
		s.keys = nil // structure changed: the sorted-key cache is stale
	}
	s.entries[k] += v
}

// sortedKeys returns the entry keys in ascending (row, col) order, building
// the cache on first use after a structural change.
func (s *Sparse) sortedKeys() []int64 {
	if s.keys == nil && len(s.entries) > 0 {
		s.keys = make([]int64, 0, len(s.entries))
		for k := range s.entries {
			s.keys = append(s.keys, k)
		}
		sort.Slice(s.keys, func(a, b int) bool { return s.keys[a] < s.keys[b] })
	}
	return s.keys
}

// AddSym accumulates the symmetric 2×2 conductance-style stamp
// +v at (i,i) and (j,j), −v at (i,j) and (j,i). Negative node indices denote
// ground and are skipped, which matches MNA stamping conventions.
func (s *Sparse) AddSym(i, j int, v float64) {
	if i >= 0 {
		s.Add(i, i, v)
	}
	if j >= 0 {
		s.Add(j, j, v)
	}
	if i >= 0 && j >= 0 {
		s.Add(i, j, -v)
		s.Add(j, i, -v)
	}
}

// At returns the value at (i, j), zero if unset.
func (s *Sparse) At(i, j int) float64 { return s.entries[s.key(i, j)] }

// NNZ returns the number of stored (possibly zero-valued) entries.
func (s *Sparse) NNZ() int { return len(s.entries) }

// Entries returns all stored entries sorted by (row, col).
func (s *Sparse) Entries() []Coord {
	out := make([]Coord, 0, len(s.entries))
	for _, k := range s.sortedKeys() {
		out = append(out, Coord{Row: int(k / int64(s.n)), Col: int(k % int64(s.n)), Val: s.entries[k]})
	}
	return out
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	out := NewSparse(s.n)
	for k, v := range s.entries {
		out.entries[k] = v
	}
	return out
}

// Dense converts the sparse matrix to dense form.
func (s *Sparse) Dense() *Dense {
	d := NewDense(s.n, s.n)
	for k, v := range s.entries {
		d.Set(int(k/int64(s.n)), int(k%int64(s.n)), v)
	}
	return d
}

// MulVec returns A·x.
func (s *Sparse) MulVec(x []float64) []float64 {
	if len(x) != s.n {
		panic("matrix: Sparse.MulVec length mismatch")
	}
	out := make([]float64, s.n)
	for _, k := range s.sortedKeys() {
		i, j := int(k/int64(s.n)), int(k%int64(s.n))
		out[i] += s.entries[k] * x[j]
	}
	return out
}

// IsStructurallySymmetric reports whether every stored (i,j) has a stored
// (j,i) counterpart (values may differ).
func (s *Sparse) IsStructurallySymmetric() bool {
	for k := range s.entries {
		i, j := int(k/int64(s.n)), int(k%int64(s.n))
		if i == j {
			continue
		}
		if _, ok := s.entries[s.key(j, i)]; !ok {
			return false
		}
	}
	return true
}

// Adjacency returns, for each node, the sorted list of distinct neighbours
// implied by the off-diagonal structure (union of row and column pattern).
func (s *Sparse) Adjacency() [][]int {
	adj := make([]map[int]struct{}, s.n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	for k := range s.entries {
		i, j := int(k/int64(s.n)), int(k%int64(s.n))
		if i == j {
			continue
		}
		adj[i][j] = struct{}{}
		adj[j][i] = struct{}{}
	}
	out := make([][]int, s.n)
	for i, m := range adj {
		lst := make([]int, 0, len(m))
		for j := range m {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		out[i] = lst
	}
	return out
}

// Permuted returns P·A·Pᵀ where perm maps old index → new index.
func (s *Sparse) Permuted(perm []int) *Sparse {
	if len(perm) != s.n {
		panic("matrix: Permuted length mismatch")
	}
	out := NewSparse(s.n)
	for k, v := range s.entries {
		i, j := int(k/int64(s.n)), int(k%int64(s.n))
		out.Add(perm[i], perm[j], v)
	}
	return out
}
