package matrix

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZLUSolveKnown(t *testing.T) {
	// (1+j)x = 2 → x = 1−j.
	a := NewZDense(1, 1)
	a.Set(0, 0, complex(1, 1))
	lu, err := FactorZLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve([]complex128{2})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-complex(1, -1)) > 1e-14 {
		t.Errorf("x = %v, want 1-1j", x[0])
	}
}

func TestZLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := NewZDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(3*n), 0)) // diagonally dominant
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		lu, err := FactorZLU(a)
		if err != nil {
			return false
		}
		x, err := lu.Solve(b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range r {
			if cmplx.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZLUSingular(t *testing.T) {
	a := NewZDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := FactorZLU(a); err == nil {
		t.Error("singular complex matrix accepted")
	}
}

func TestZDenseOps(t *testing.T) {
	m := NewZDense(2, 2)
	m.Set(0, 1, complex(1, 2))
	m.Add(0, 1, complex(0, -1))
	if m.At(0, 1) != complex(1, 1) {
		t.Errorf("At = %v", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) == 0 {
		t.Error("Clone aliases data")
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Error("dims wrong")
	}
}
