package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparse builds a random n×n accumulator with roughly density·n² entries
// (duplicate adds included, exercising the summing path).
func randomSparse(rng *rand.Rand, n int, density float64) *Sparse {
	s := NewSparse(n)
	m := int(density * float64(n) * float64(n))
	if m < 1 {
		m = 1
	}
	for k := 0; k < m; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		s.Add(i, j, rng.NormFloat64())
	}
	return s
}

// TestCSRMatchesSparse checks, on randomized matrices, that the compiled CSR
// form is observationally identical to the accumulator it came from: the same
// entries in the same (row, col) order, bit-identical MulVec results (both
// iterate in sorted row-major order, so even the floating-point summation
// order matches), and agreeing At/NNZ/structure queries.
func TestCSRMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		s := randomSparse(rng, n, 0.15)
		c := s.Compile()

		if c.Size() != s.Size() || c.NNZ() != s.NNZ() {
			t.Fatalf("trial %d: size/nnz mismatch: CSR (%d,%d) vs Sparse (%d,%d)",
				trial, c.Size(), c.NNZ(), s.Size(), s.NNZ())
		}
		se, ce := s.Entries(), c.Entries()
		if len(se) != len(ce) {
			t.Fatalf("trial %d: entry count %d vs %d", trial, len(ce), len(se))
		}
		for k := range se {
			if se[k] != ce[k] {
				t.Fatalf("trial %d: entry %d differs: CSR %+v vs Sparse %+v", trial, k, ce[k], se[k])
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ys, yc := s.MulVec(x), c.MulVec(x)
		for i := range ys {
			if ys[i] != yc[i] {
				t.Fatalf("trial %d: MulVec[%d] = %g (CSR) vs %g (Sparse), diff %g",
					trial, i, yc[i], ys[i], yc[i]-ys[i])
			}
		}
		for probe := 0; probe < 20; probe++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if c.At(i, j) != s.At(i, j) {
				t.Fatalf("trial %d: At(%d,%d) = %g vs %g", trial, i, j, c.At(i, j), s.At(i, j))
			}
		}
		if c.IsStructurallySymmetric() != s.IsStructurallySymmetric() {
			t.Fatalf("trial %d: structural symmetry disagrees", trial)
		}
	}
}

// TestCSRMatchesSparseNonFinite extends the bit-identity property to
// non-finite inputs: vectors carrying ±0, ±Inf and NaN, and matrices with
// stored explicit zeros (cancelled accumulations) and non-finite entries.
// Both kernels iterate the stored entries in the same sorted row-major
// order, so even NaN-producing terms (0·±Inf, Inf−Inf) must evaluate in the
// same sequence and land on identical bit patterns. This pins the CSR
// history product of the direct-MNA path as bit-equal to the map-backed
// reference regardless of how far an iterate has diverged.
func TestCSRMatchesSparseNonFinite(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		1.5, -2.25, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		s := randomSparse(rng, n, 0.15)
		// Stored explicit zeros: accumulate +v then −v on the same slot.
		for k := 0; k < 1+n/4; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := 1 + rng.Float64()
			s.Add(i, j, v)
			s.Add(i, j, -v)
		}
		// A few non-finite and signed-zero matrix entries.
		for k := 0; k < 1+n/4; k++ {
			s.Add(rng.Intn(n), rng.Intn(n), specials[rng.Intn(len(specials))])
		}
		c := s.Compile()

		x := make([]float64, n)
		for i := range x {
			if rng.Intn(2) == 0 {
				x[i] = specials[rng.Intn(len(specials))]
			} else {
				x[i] = rng.NormFloat64()
			}
		}
		ys := s.MulVec(x)
		yc := make([]float64, n)
		c.MulVecTo(yc, x)
		for i := range ys {
			if math.Float64bits(ys[i]) != math.Float64bits(yc[i]) {
				t.Fatalf("trial %d: MulVec[%d] bits differ: CSR %x (%g) vs Sparse %x (%g)",
					trial, i, math.Float64bits(yc[i]), yc[i], math.Float64bits(ys[i]), ys[i])
			}
		}
	}
}

// TestCSRAdjacencyPermutedMatchSparse checks the graph-side operations used by
// the RCM reordering pipeline against the reference Sparse implementations.
func TestCSRAdjacencyPermutedMatchSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		s := randomSparse(rng, n, 0.12)
		c := s.Compile()

		sa, ca := s.Adjacency(), c.Adjacency()
		for i := range sa {
			if len(sa[i]) != len(ca[i]) {
				t.Fatalf("trial %d: node %d degree %d vs %d", trial, i, len(ca[i]), len(sa[i]))
			}
			for k := range sa[i] {
				if sa[i][k] != ca[i][k] {
					t.Fatalf("trial %d: node %d neighbour %d: %d vs %d", trial, i, k, ca[i][k], sa[i][k])
				}
			}
		}

		perm := rng.Perm(n)
		sp, cp := s.Permuted(perm).Entries(), c.Permuted(perm).Entries()
		if len(sp) != len(cp) {
			t.Fatalf("trial %d: permuted entry count %d vs %d", trial, len(cp), len(sp))
		}
		for k := range sp {
			if sp[k] != cp[k] {
				t.Fatalf("trial %d: permuted entry %d: %+v vs %+v", trial, k, cp[k], sp[k])
			}
		}
	}
}

// TestCSRForEachOrder checks that ForEach visits exactly the Entries sequence.
func TestCSRForEachOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSparse(rng, 25, 0.2)
	c := s.Compile()
	want := c.Entries()
	k := 0
	c.ForEach(func(i, j int, v float64) {
		if k >= len(want) || want[k] != (Coord{Row: i, Col: j, Val: v}) {
			t.Fatalf("ForEach visit %d = (%d,%d,%g), want %+v", k, i, j, v, want[k])
		}
		k++
	})
	if k != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", k, len(want))
	}
}

// TestSolveLUInPlace checks the scratch-friendly combined factor+solve against
// the reference FactorLU/Solve pair: the two run the identical elimination
// and substitution sequence, so the results must be bit-identical.
func TestSolveLUInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonally dominant enough to be regular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		lu, err := FactorLU(a.Clone())
		if err != nil {
			t.Fatalf("trial %d: FactorLU: %v", trial, err)
		}
		want, err := lu.Solve(append([]float64(nil), b...))
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}

		got := append([]float64(nil), b...)
		piv := make([]int, n)
		if err := SolveLUInPlace(a.Clone(), piv, got); err != nil {
			t.Fatalf("trial %d: SolveLUInPlace: %v", trial, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: x[%d] = %g, want %g (diff %g)",
					trial, i, got[i], want[i], math.Abs(got[i]-want[i]))
			}
		}
	}
}

// BenchmarkSparseMulVec contrasts the map-backed COO accumulator with its
// compiled CSR snapshot on the matrix-vector kernel that dominates the
// Lanczos and transient inner loops.
func BenchmarkSparseMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 400
	s := randomSparse(rng, n, 0.02)
	c := s.Compile()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.Run("map-coo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.MulVec(x)
		}
	})
	b.Run("csr", func(b *testing.B) {
		dst := make([]float64, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.MulVecTo(dst, x)
		}
	})
}
