package matrix

// RCM computes a reverse Cuthill–McKee ordering for the graph given by the
// adjacency lists. It returns perm with perm[old] = new, chosen to reduce the
// matrix profile before skyline factorization. Disconnected components are
// handled by restarting from the lowest-degree unvisited node (lowest
// original index among equal degrees).
//
// The BFS queue is the visit-order slice itself (every dequeued node is
// appended to the order in enqueue order, so the two sequences coincide), and
// freshly enqueued neighbours are degree-sorted in place with an insertion
// sort — RC-network degrees are tiny, and this keeps the whole routine at
// three allocations regardless of graph size.
//
// The ordering is fully deterministic and independent of the adjacency
// lists' own ordering: equal-degree neighbours are tied broken by ascending
// original index (explicitly, in the sort comparison), so every input
// describing the same graph yields the same permutation. Fingerprint-keyed
// ROM memoization relies on this: two structurally identical clusters must
// factor through the same ordering to produce bit-identical models.
func RCM(adj [][]int) []int {
	n := len(adj)
	order := make([]int, 0, n) // Cuthill–McKee visit order (old indices)
	visited := make([]bool, n)
	deg := make([]int, n)
	for i, a := range adj {
		deg[i] = len(a)
	}
	head := 0
	for len(order) < n {
		// Pick the unvisited node with minimum degree as the component root.
		root := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (root == -1 || deg[i] < deg[root]) {
				root = i
			}
		}
		visited[root] = true
		order = append(order, root)
		for head < len(order) {
			v := order[head]
			head++
			// Enqueue unvisited neighbours in increasing degree order.
			start := len(order)
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					order = append(order, w)
				}
			}
			seg := order[start:]
			for a := 1; a < len(seg); a++ {
				x := seg[a]
				b := a - 1
				for b >= 0 && (deg[seg[b]] > deg[x] ||
					(deg[seg[b]] == deg[x] && seg[b] > x)) {
					seg[b+1] = seg[b]
					b--
				}
				seg[b+1] = x
			}
		}
	}
	// Reverse the Cuthill–McKee order and convert to old→new form.
	perm := make([]int, n)
	for newIdx, oldIdx := range order {
		perm[oldIdx] = n - 1 - newIdx
	}
	return perm
}

// InvertPerm returns the inverse permutation: if perm[old] = new, the result
// maps new → old.
func InvertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for old, new := range perm {
		inv[new] = old
	}
	return inv
}

// PermuteVec returns y with y[perm[i]] = x[i].
func PermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for i, p := range perm {
		out[p] = x[i]
	}
	return out
}

// UnpermuteVec returns y with y[i] = x[perm[i]]; it inverts PermuteVec.
func UnpermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for i, p := range perm {
		out[i] = x[p]
	}
	return out
}

// Profile returns the skyline profile size (number of stored entries of the
// lower triangle including the diagonal) of the sparse matrix pattern under
// the identity ordering.
func Profile(adj [][]int) int {
	total := 0
	for i, nbrs := range adj {
		first := i
		for _, j := range nbrs {
			if j < first {
				first = j
			}
		}
		total += i - first + 1
	}
	return total
}
