package matrix

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Dense
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. Only the lower triangle of a is read. It returns
// ErrNotPositiveDefinite if a pivot is non-positive.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: FactorCholesky needs square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// ErrNotPositiveDefinite is returned when Cholesky factorization encounters a
// non-positive pivot.
var ErrNotPositiveDefinite = fmt.Errorf("matrix: not positive definite")

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// Solve solves A·x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	y := c.SolveLower(b)
	return c.SolveUpper(y)
}

// SolveLower solves L·y = b (forward substitution).
func (c *Cholesky) SolveLower(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic("matrix: Cholesky.SolveLower length mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		ri := c.l.data[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	return y
}

// SolveUpper solves Lᵀ·x = y (back substitution).
func (c *Cholesky) SolveUpper(y []float64) []float64 {
	n := c.l.rows
	if len(y) != n {
		panic("matrix: Cholesky.SolveUpper length mismatch")
	}
	x := CloneVec(y)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (c *Cholesky) Det() float64 {
	d := 1.0
	for i := 0; i < c.l.rows; i++ {
		v := c.l.At(i, i)
		d *= v * v
	}
	return d
}
