package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix frozen from a Sparse accumulator once
// stamping is complete. Rows are stored contiguously with sorted column
// indices, so every traversal (MulVec, Entries, Adjacency) is a linear sweep
// over three flat arrays in a fixed order — no hash lookups, no int64
// division, and no sorted-key cache to invalidate. This is the form every hot
// numeric loop operates on; Sparse remains the assembly-side representation.
type CSR struct {
	n      int
	rowptr []int // row i spans vals[rowptr[i]:rowptr[i+1]]
	colidx []int // sorted within each row
	vals   []float64
}

// Compile freezes the accumulator into CSR form. The Sparse matrix is not
// modified and can keep accumulating; the CSR snapshot is immutable.
func (s *Sparse) Compile() *CSR {
	nnz := len(s.entries)
	c := &CSR{
		n:      s.n,
		rowptr: make([]int, s.n+1),
		colidx: make([]int, nnz),
		vals:   make([]float64, nnz),
	}
	keys := make([]int64, 0, nnz)
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	row := 0
	for idx, k := range keys {
		i, j := int(k/int64(s.n)), int(k%int64(s.n))
		for row < i {
			row++
			c.rowptr[row] = idx
		}
		c.colidx[idx] = j
		c.vals[idx] = s.entries[k]
	}
	for row < s.n {
		row++
		c.rowptr[row] = nnz
	}
	return c
}

// NewCSRFromCoords builds a CSR matrix directly from coordinate entries;
// duplicates are summed. Used by tests and by permutation.
func NewCSRFromCoords(n int, coords []Coord) *CSR {
	s := NewSparse(n)
	for _, e := range coords {
		if e.Val != 0 {
			s.Add(e.Row, e.Col, e.Val)
		} else {
			// Preserve explicitly stored zeros (Sparse.Add skips them) so the
			// structural pattern survives a permutation round trip.
			s.entries[s.key(e.Row, e.Col)] += 0
		}
	}
	return s.Compile()
}

// Size returns n for the n×n matrix.
func (c *CSR) Size() int { return c.n }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.vals) }

// At returns the value at (i, j), zero if unset, via binary search within
// row i's sorted column indices.
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("matrix: CSR index (%d,%d) out of range n=%d", i, j, c.n))
	}
	lo, hi := c.rowptr[i], c.rowptr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case c.colidx[mid] < j:
			lo = mid + 1
		case c.colidx[mid] > j:
			hi = mid
		default:
			return c.vals[mid]
		}
	}
	return 0
}

// Entries returns all stored entries sorted by (row, col) — the same order
// and contents Sparse.Entries produces for the matrix it was compiled from.
func (c *CSR) Entries() []Coord {
	out := make([]Coord, 0, len(c.vals))
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			out = append(out, Coord{Row: i, Col: c.colidx[idx], Val: c.vals[idx]})
		}
	}
	return out
}

// ForEach visits every stored entry in (row, col) order — the same order
// Entries returns — without allocating the coordinate slice.
func (c *CSR) ForEach(fn func(i, j int, v float64)) {
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			fn(i, c.colidx[idx], c.vals[idx])
		}
	}
}

// MulVec returns A·x.
func (c *CSR) MulVec(x []float64) []float64 {
	out := make([]float64, c.n)
	c.MulVecTo(out, x)
	return out
}

// MulVecTo computes dst = A·x in place without allocating. dst must not
// alias x.
func (c *CSR) MulVecTo(dst, x []float64) {
	if len(x) != c.n || len(dst) != c.n {
		panic("matrix: CSR.MulVecTo length mismatch")
	}
	for i := 0; i < c.n; i++ {
		s := 0.0
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			s += c.vals[idx] * x[c.colidx[idx]]
		}
		dst[i] = s
	}
}

// Dense converts to dense form.
func (c *CSR) Dense() *Dense {
	d := NewDense(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			d.Set(i, c.colidx[idx], c.vals[idx])
		}
	}
	return d
}

// IsStructurallySymmetric reports whether every stored (i,j) has a stored
// (j,i) counterpart (values may differ).
func (c *CSR) IsStructurallySymmetric() bool {
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			j := c.colidx[idx]
			if i == j {
				continue
			}
			// Probe (j, i) without the At bounds re-check.
			lo, hi := c.rowptr[j], c.rowptr[j+1]
			found := false
			for lo < hi {
				mid := (lo + hi) / 2
				switch {
				case c.colidx[mid] < i:
					lo = mid + 1
				case c.colidx[mid] > i:
					hi = mid
				default:
					found = true
					lo = hi
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

// Adjacency returns, for each node, the sorted list of distinct neighbours
// implied by the off-diagonal structure (union of row and column pattern).
// Unlike the Sparse implementation it needs no per-node hash sets: neighbour
// counts are tallied in one sweep, lists are filled into a single backing
// array, then each is sorted and deduplicated.
func (c *CSR) Adjacency() [][]int {
	counts := make([]int, c.n)
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			if j := c.colidx[idx]; j != i {
				counts[i]++
				counts[j]++
			}
		}
	}
	offs := make([]int, c.n+1)
	for i := 0; i < c.n; i++ {
		offs[i+1] = offs[i] + counts[i]
	}
	backing := make([]int, offs[c.n])
	fill := make([]int, c.n)
	copy(fill, offs[:c.n])
	for i := 0; i < c.n; i++ {
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			if j := c.colidx[idx]; j != i {
				backing[fill[i]] = j
				fill[i]++
				backing[fill[j]] = i
				fill[j]++
			}
		}
	}
	out := make([][]int, c.n)
	for i := 0; i < c.n; i++ {
		lst := backing[offs[i]:fill[i]]
		sort.Ints(lst)
		// Deduplicate in place: (i,j) and (j,i) both present produce doubles.
		w := 0
		for r := 0; r < len(lst); r++ {
			if w == 0 || lst[r] != lst[w-1] {
				lst[w] = lst[r]
				w++
			}
		}
		out[i] = lst[:w]
	}
	return out
}

// Permuted returns P·A·Pᵀ where perm maps old index → new index.
func (c *CSR) Permuted(perm []int) *CSR {
	if len(perm) != c.n {
		panic("matrix: CSR.Permuted length mismatch")
	}
	nnz := len(c.vals)
	out := &CSR{
		n:      c.n,
		rowptr: make([]int, c.n+1),
		colidx: make([]int, nnz),
		vals:   make([]float64, nnz),
	}
	// Counting pass over permuted row indices.
	for i := 0; i < c.n; i++ {
		out.rowptr[perm[i]+1] += c.rowptr[i+1] - c.rowptr[i]
	}
	for i := 0; i < c.n; i++ {
		out.rowptr[i+1] += out.rowptr[i]
	}
	fill := make([]int, c.n)
	copy(fill, out.rowptr[:c.n])
	for i := 0; i < c.n; i++ {
		pi := perm[i]
		for idx := c.rowptr[i]; idx < c.rowptr[i+1]; idx++ {
			at := fill[pi]
			out.colidx[at] = perm[c.colidx[idx]]
			out.vals[at] = c.vals[idx]
			fill[pi]++
		}
	}
	// Column indices within each permuted row are no longer sorted; restore
	// the invariant with a small per-row insertion sort (rows are short).
	for i := 0; i < c.n; i++ {
		lo, hi := out.rowptr[i], out.rowptr[i+1]
		for a := lo + 1; a < hi; a++ {
			cj, cv := out.colidx[a], out.vals[a]
			b := a - 1
			for b >= lo && out.colidx[b] > cj {
				out.colidx[b+1], out.vals[b+1] = out.colidx[b], out.vals[b]
				b--
			}
			out.colidx[b+1], out.vals[b+1] = cj, cv
		}
	}
	return out
}
