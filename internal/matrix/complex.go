package matrix

import (
	"fmt"
	"math/cmplx"
)

// ZDense is a row-major dense complex matrix, used for frequency-domain
// evaluation of interconnect transfer functions (G + jωC solves).
type ZDense struct {
	rows, cols int
	data       []complex128
}

// NewZDense returns a rows×cols zero complex matrix.
func NewZDense(rows, cols int) *ZDense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &ZDense{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// Rows returns the row count.
func (m *ZDense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *ZDense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *ZDense) At(i, j int) complex128 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *ZDense) Set(i, j int, v complex128) { m.data[i*m.cols+j] = v }

// Add accumulates into element (i, j).
func (m *ZDense) Add(i, j int, v complex128) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *ZDense) Clone() *ZDense {
	out := NewZDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec computes A·x.
func (m *ZDense) MulVec(x []complex128) []complex128 {
	if len(x) != m.cols {
		panic("matrix: ZDense.MulVec length mismatch")
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		s := complex(0, 0)
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ZLU is a dense complex LU factorization with partial pivoting.
type ZLU struct {
	lu  *ZDense
	piv []int
}

// FactorZLU computes the LU factorization of a square complex matrix.
func FactorZLU(a *ZDense) (*ZLU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: FactorZLU needs square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		maxv := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := lu.At(i, k) / pivot
			lu.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return &ZLU{lu: lu, piv: piv}, nil
}

// Solve solves A·x = b.
func (f *ZLU) Solve(b []complex128) ([]complex128, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("matrix: ZLU.Solve length mismatch")
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		ri := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
