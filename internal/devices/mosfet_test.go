package devices

import (
	"math"
	"testing"
	"testing/quick"
)

func nmos() *MOSFET { return &MOSFET{Params: Tech025(NMOS), W: 1e-6, L: 0.25e-6} }
func pmos() *MOSFET { return &MOSFET{Params: Tech025(PMOS), W: 2e-6, L: 0.25e-6} }

func TestNMOSRegions(t *testing.T) {
	m := nmos()
	// Cutoff: vgs below VT.
	id, gm, _ := m.Eval(1.5, 0.2, 0)
	if math.Abs(id) > 1e-9 || gm != 0 {
		t.Errorf("cutoff: id=%g gm=%g", id, gm)
	}
	// Saturation: vds > vov.
	idSat, gmSat, gdsSat := m.Eval(3, 1.5, 0)
	if idSat <= 0 || gmSat <= 0 || gdsSat <= 0 {
		t.Errorf("saturation: id=%g gm=%g gds=%g", idSat, gmSat, gdsSat)
	}
	// Triode: small vds, conductive.
	idTri, _, gdsTri := m.Eval(0.1, 3, 0)
	if idTri <= 0 || gdsTri <= gdsSat {
		t.Errorf("triode should have high gds: id=%g gds=%g", idTri, gdsTri)
	}
}

func TestNMOSRegionContinuity(t *testing.T) {
	m := nmos()
	vgs := 1.5
	vov := vgs - m.Params.VT0
	below, _, _ := m.Eval(vov-1e-9, vgs, 0)
	above, _, _ := m.Eval(vov+1e-9, vgs, 0)
	if math.Abs(below-above) > 1e-9*math.Abs(above) {
		t.Errorf("discontinuity at triode/sat boundary: %g vs %g", below, above)
	}
}

func TestNMOSDerivativesNumeric(t *testing.T) {
	m := nmos()
	const h = 1e-7
	for _, pt := range [][3]float64{{2.0, 1.2, 0}, {0.3, 2.5, 0}, {1.0, 1.0, 0.2}} {
		vd, vg, vs := pt[0], pt[1], pt[2]
		_, gm, gds := m.Eval(vd, vg, vs)
		idP := m.IdsAt(vd, vg+h, vs)
		idM := m.IdsAt(vd, vg-h, vs)
		numGm := (idP - idM) / (2 * h)
		if math.Abs(numGm-gm) > 1e-4*(math.Abs(gm)+1e-9) {
			t.Errorf("gm mismatch at %v: analytic %g numeric %g", pt, gm, numGm)
		}
		idP = m.IdsAt(vd+h, vg, vs)
		idM = m.IdsAt(vd-h, vg, vs)
		numGds := (idP - idM) / (2 * h)
		if math.Abs(numGds-gds) > 1e-4*(math.Abs(gds)+1e-9) {
			t.Errorf("gds mismatch at %v: analytic %g numeric %g", pt, gds, numGds)
		}
	}
}

func TestReversedChannelAntisymmetry(t *testing.T) {
	// Swapping drain and source negates the current.
	m := nmos()
	f := func(vdRaw, vgRaw uint8) bool {
		vd := float64(vdRaw) / 255 * 3
		vg := float64(vgRaw) / 255 * 3
		fwd := m.IdsAt(vd, vg, 0.5)
		rev := m.IdsAt(0.5, vg, vd)
		return math.Abs(fwd+rev) <= 1e-9*(math.Abs(fwd)+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	p := pmos()
	// A PMOS with source at Vdd and gate low conducts, pulling the drain up:
	// current into the drain is negative (conventional current flows out of
	// the drain into the node it charges).
	id, _, _ := p.Eval(0, 0, 3)
	if id >= 0 {
		t.Errorf("conducting PMOS drain current = %g, want negative", id)
	}
	// Gate at Vdd: off.
	idOff, _, _ := p.Eval(0, 3, 3)
	if math.Abs(idOff) > 1e-9 {
		t.Errorf("off PMOS leaks %g", idOff)
	}
}

func TestWidthScaling(t *testing.T) {
	a := &MOSFET{Params: Tech025(NMOS), W: 1e-6, L: 0.25e-6}
	b := &MOSFET{Params: Tech025(NMOS), W: 4e-6, L: 0.25e-6}
	ia := a.IdsAt(3, 2, 0)
	ib := b.IdsAt(3, 2, 0)
	if math.Abs(ib/ia-4) > 1e-9 {
		t.Errorf("current should scale with W: ratio %g", ib/ia)
	}
}

func TestSaturationCurrentMagnitude(t *testing.T) {
	// Sanity: a 1µm/0.25µm NMOS at vgs=vds=3 V delivers on the order of
	// a few mA (beta/2·vov²·(1+λvds)).
	m := nmos()
	id := m.IdsAt(3, 3, 0)
	beta := m.Params.KP * m.W / m.L
	vov := 3 - m.Params.VT0
	want := 0.5 * beta * vov * vov * (1 + m.Params.Lambda*3)
	if math.Abs(id-want) > 1e-12 {
		t.Errorf("saturation current %g, want %g", id, want)
	}
	if id < 1e-3 || id > 1e-2 {
		t.Errorf("current %g A implausible for 0.25µm device", id)
	}
}
