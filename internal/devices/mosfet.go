// Package devices provides the nonlinear device models used by the
// SPICE-class reference simulator: a level-1 (Shichman–Hodges) MOSFET with
// channel-length modulation, plus the 0.25 µm technology parameters the
// synthetic cell library is built on.
package devices

// MOSType distinguishes n- and p-channel devices.
type MOSType int

const (
	// NMOS is an n-channel device.
	NMOS MOSType = iota
	// PMOS is a p-channel device.
	PMOS
)

// MOSParams are level-1 model parameters.
type MOSParams struct {
	Type MOSType
	// VT0 is the zero-bias threshold voltage (positive for NMOS, negative
	// for PMOS).
	VT0 float64
	// KP is the transconductance parameter µ·Cox (A/V²).
	KP float64
	// Lambda is the channel-length modulation coefficient (1/V).
	Lambda float64
}

// Tech025 returns the 0.25 µm level-1 parameters used throughout the
// reproduction (DESIGN.md Section 6).
func Tech025(t MOSType) MOSParams {
	if t == NMOS {
		return MOSParams{Type: NMOS, VT0: 0.43, KP: 170e-6, Lambda: 0.06}
	}
	return MOSParams{Type: PMOS, VT0: -0.40, KP: 60e-6, Lambda: 0.08}
}

// Vdd025 is the supply voltage of the reproduced experiments (the paper's
// Tables 3 and 4 state Vdd = 3.0).
const Vdd025 = 3.0

// MOSFET is a sized level-1 transistor. Terminal order is drain, gate,
// source; the body is assumed tied to the appropriate rail (no body effect
// in level 1 without gamma).
type MOSFET struct {
	Params MOSParams
	// W and L are the drawn width and length in meters.
	W, L float64
}

// Eval computes the drain current Id flowing into the drain terminal and its
// partial derivatives gm = ∂Id/∂Vgs and gds = ∂Id/∂Vds, for terminal
// voltages vd, vg, vs referenced to ground. The model is symmetric: when the
// channel is reversed (Vds < 0 for NMOS) drain and source roles swap.
func (m *MOSFET) Eval(vd, vg, vs float64) (id, gm, gds float64) {
	switch m.Params.Type {
	case NMOS:
		if vd >= vs {
			id, gm, gds = m.forward(vg-vs, vd-vs)
		} else {
			// Reversed channel: physical source is the drain terminal.
			ir, gmr, gdsr := m.forward(vg-vd, vs-vd)
			// Id(into drain) = -Ir; derivatives by the chain rule:
			// vgs' = vg - vd, vds' = vs - vd.
			// ∂Id/∂Vgs where Vgs = vg - vs: ∂Id/∂vg = -gmr; ∂Id/∂vs = -gdsr.
			// Express in (gm, gds) of the unprimed orientation:
			// Id = -Ir(vg - vd, vs - vd)
			// gm = ∂Id/∂vg (holding vs, vd) = -gmr
			// gds = ∂Id/∂vd = gmr + gdsr
			id = -ir
			gm = -gmr
			gds = gmr + gdsr
		}
		return id, gm, gds
	default: // PMOS: mirror all voltages.
		idn, gmn, gdsn := (&MOSFET{
			Params: MOSParams{Type: NMOS, VT0: -m.Params.VT0, KP: m.Params.KP, Lambda: m.Params.Lambda},
			W:      m.W, L: m.L,
		}).Eval(-vd, -vg, -vs)
		return -idn, gmn, gdsn
	}
}

// forward evaluates the NMOS equations for vds >= 0.
func (m *MOSFET) forward(vgs, vds float64) (id, gm, gds float64) {
	beta := m.Params.KP * m.W / m.L
	vov := vgs - m.Params.VT0
	lam := m.Params.Lambda
	if vov <= 0 {
		// Cutoff: a tiny subthreshold-style conductance keeps Newton
		// iterations well-conditioned without visibly changing waveforms.
		const gleak = 1e-12
		return gleak * vds, 0, gleak
	}
	clm := 1 + lam*vds
	if vds < vov {
		// Triode region.
		id = beta * (vov*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-0.5*vds*vds)*lam
	} else {
		// Saturation.
		id = 0.5 * beta * vov * vov * clm
		gm = beta * vov * clm
		gds = 0.5 * beta * vov * vov * lam
	}
	return id, gm, gds
}

// IdsAt is a convenience that returns only the current.
func (m *MOSFET) IdsAt(vd, vg, vs float64) float64 {
	id, _, _ := m.Eval(vd, vg, vs)
	return id
}
