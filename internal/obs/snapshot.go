// The metrics snapshot: the frozen, JSON-serializable view of a Collector.
//
// Schema (version 3 — version 2 plus the incremental-reverify counters
// reverify_jobs / clusters_reused / clusters_recomputed and the persistent
// prepared-transient counter prepared_store_hits):
//
//	{
//	  "schema_version": 3,
//	  "workers":        <resolved pool size>,
//	  "wall_ns":        <end-to-end cluster-analysis time>,
//	  "counters":       {"<counter name>": <int64>, ...},   // every counter, zero included
//	  "phases":         {"<phase name>": {"count","total_ns","max_ns","mean_ns"}, ...},
//	  "queue":          {"submitted", "max_in_flight"},
//	  "clusters":       [{"victim","stage","phases":{...},"counters":{...}}, ...]
//	}
//
// encoding/json sorts map keys, and the clusters slice is built in victim
// (cluster) order, so a snapshot's serialization is deterministic. Counter
// totals are identical between serial and parallel runs; durations, the
// queue gauge and per-cluster counter attribution are run-dependent.
package obs

import (
	"encoding/json"
	"io"
)

// SchemaVersion is the metrics JSON schema version emitted by Snapshot.
// Version 2 added the rung-0 screening counters; version 3 the incremental
// reverify and persistent prepared-transient counters; version 4 the
// streaming-ingest counters (nets_streamed, clusters_emitted_eager,
// frontier_peak_nets).
const SchemaVersion = 4

// PhaseMetrics summarizes the recorded spans of one phase.
type PhaseMetrics struct {
	// Count is the number of completed spans.
	Count int64 `json:"count"`
	// TotalNs and MaxNs are the summed and worst span durations.
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
	// MeanNs is TotalNs/Count (0 when Count is 0).
	MeanNs int64 `json:"mean_ns"`
}

// ClusterMetrics is one cluster's slice of the flame: which ladder rung
// produced its result and where its time went.
type ClusterMetrics struct {
	// Victim is the cluster's victim net name.
	Victim string `json:"victim"`
	// Stage is the ladder rung that produced the result.
	Stage string `json:"stage"`
	// Phases holds the cluster's recorded spans (absent phases omitted).
	Phases map[string]PhaseMetrics `json:"phases,omitempty"`
	// Counters holds the cluster's non-zero counters.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// QueueMetrics describes worker-pool pressure.
type QueueMetrics struct {
	// Submitted is the number of clusters handed to workers.
	Submitted int64 `json:"submitted"`
	// MaxInFlight is the high-water mark of concurrently analyzed clusters.
	MaxInFlight int64 `json:"max_in_flight"`
}

// Snapshot is the frozen metrics view of one run.
type Snapshot struct {
	SchemaVersion int                     `json:"schema_version"`
	Workers       int                     `json:"workers"`
	WallNs        int64                   `json:"wall_ns"`
	Counters      map[string]int64        `json:"counters"`
	Phases        map[string]PhaseMetrics `json:"phases"`
	Queue         QueueMetrics            `json:"queue"`
	Clusters      []ClusterMetrics        `json:"clusters,omitempty"`
}

// Snapshot freezes the collector's current state. It may be called mid-run
// (the expvar endpoint does); the engine calls it once more at run end for
// Report.Diagnostics. Nil-safe: a nil collector yields a nil snapshot.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		Workers:       c.workers,
		WallNs:        c.wallNs,
		Counters:      make(map[string]int64, NumCounters),
		Phases:        make(map[string]PhaseMetrics, NumPhases),
		Queue: QueueMetrics{
			Submitted:   c.submitted.Load(),
			MaxInFlight: c.maxInFlight.Load(),
		},
	}
	for i := Counter(0); i < NumCounters; i++ {
		s.Counters[i.String()] = c.counters[i]
	}
	for i := Phase(0); i < NumPhases; i++ {
		if st := c.spans[i]; st.count > 0 {
			s.Phases[i.String()] = st.metrics()
		}
	}
	s.Clusters = append(s.Clusters, c.clusters...)
	return s
}

// WriteJSON writes the snapshot as indented JSON (the -metrics-out format).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func (s spanStat) metrics() PhaseMetrics {
	m := PhaseMetrics{Count: s.count, TotalNs: s.totalNs, MaxNs: s.maxNs}
	if s.count > 0 {
		m.MeanNs = s.totalNs / s.count
	}
	return m
}

// clusterMetrics freezes one trace into its per-cluster snapshot entry.
func (t *Trace) clusterMetrics(victim, stage string) ClusterMetrics {
	cm := ClusterMetrics{Victim: victim, Stage: stage}
	for i := Phase(0); i < NumPhases; i++ {
		if st := t.spans[i]; st.count > 0 {
			if cm.Phases == nil {
				cm.Phases = make(map[string]PhaseMetrics)
			}
			cm.Phases[i.String()] = st.metrics()
		}
	}
	for i := Counter(0); i < NumCounters; i++ {
		if v := t.counters[i]; v != 0 {
			if cm.Counters == nil {
				cm.Counters = make(map[string]int64)
			}
			cm.Counters[i.String()] = v
		}
	}
	return cm
}
