package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every method on nil receivers — the disabled path.
func TestNilSafety(t *testing.T) {
	var c *Collector
	var tr *Trace
	tr.Add(CtrNewtonIterations, 3)
	tr.Start(PhaseReduce).End()
	Span{}.End()
	if got := c.NewTrace(); got != nil {
		t.Fatalf("nil collector NewTrace = %v, want nil", got)
	}
	c.Add(CtrROMCacheHits, 1)
	c.Start(PhasePrune).End()
	c.MergeTrace("v", "sympvl", tr)
	c.TaskStarted()
	c.TaskDone()
	c.SetWorkers(4)
	c.SetWallTime(time.Second)
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector Snapshot = %v, want nil", got)
	}
}

// TestNames pins every phase and counter name: they are the metrics schema.
func TestNames(t *testing.T) {
	wantPhases := []string{"prune", "fingerprint", "reduce", "diagonalize", "transient"}
	for p := Phase(0); p < NumPhases; p++ {
		if got := p.String(); got != wantPhases[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, wantPhases[p])
		}
	}
	wantCtrs := []string{
		"lanczos_iterations", "newton_iterations", "newton_divergences",
		"woodbury_solves", "fallback_reduced", "fallback_regularized",
		"fallback_direct_mna", "fallback_unverified", "rom_cache_hits",
		"rom_cache_misses", "rom_cache_evictions", "prepared_reuses",
		"scenarios_batched", "diagonalize_skipped", "rung_retries",
		"rom_store_hits", "rom_store_writes", "cache_corrupt_discarded",
		"screened_rung0", "screen_bound_evals", "screen_near_threshold",
		"reverify_jobs", "clusters_reused", "clusters_recomputed",
		"prepared_store_hits", "nets_streamed", "clusters_emitted_eager",
		"frontier_peak_nets",
	}
	for c := Counter(0); c < NumCounters; c++ {
		if got := c.String(); got != wantCtrs[c] {
			t.Errorf("Counter(%d).String() = %q, want %q", c, got, wantCtrs[c])
		}
	}
}

// TestMergeOrderIndependence checks the determinism contract: merging the
// same traces (in the same cluster order) after any concurrent recording
// schedule yields identical counter totals.
func TestMergeOrderIndependence(t *testing.T) {
	build := func() *Collector {
		c := NewCollector()
		traces := make([]*Trace, 8)
		var wg sync.WaitGroup
		for i := range traces {
			tr := c.NewTrace()
			traces[i] = tr
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				c.TaskStarted()
				defer c.TaskDone()
				tr.Add(CtrLanczosIterations, int64(k+1))
				tr.Add(CtrNewtonIterations, 10)
				sp := tr.Start(PhaseTransient)
				sp.End()
			}(i)
		}
		wg.Wait()
		for i, tr := range traces {
			c.MergeTrace(string(rune('a'+i)), "sympvl", tr)
		}
		return c
	}
	s1 := build().Snapshot()
	s2 := build().Snapshot()
	j1, _ := json.Marshal(s1.Counters)
	j2, _ := json.Marshal(s2.Counters)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("counter totals differ across runs:\n%s\n%s", j1, j2)
	}
	if s1.Counters["lanczos_iterations"] != 36 || s1.Counters["newton_iterations"] != 80 {
		t.Fatalf("unexpected totals: %v", s1.Counters)
	}
	if s1.Queue.Submitted != 8 {
		t.Fatalf("submitted = %d, want 8", s1.Queue.Submitted)
	}
	if s1.Queue.MaxInFlight < 1 || s1.Queue.MaxInFlight > 8 {
		t.Fatalf("max_in_flight = %d out of range", s1.Queue.MaxInFlight)
	}
	if len(s1.Clusters) != 8 || s1.Clusters[0].Victim != "a" {
		t.Fatalf("clusters not in merge order: %+v", s1.Clusters)
	}
}

// TestSnapshotJSON checks the snapshot serializes with the documented
// schema fields, every counter present, and deterministic bytes.
func TestSnapshotJSON(t *testing.T) {
	c := NewCollector()
	c.SetWorkers(2)
	c.SetWallTime(5 * time.Millisecond)
	sp := c.Start(PhasePrune)
	sp.End()
	tr := c.NewTrace()
	tr.Add(CtrNewtonIterations, 7)
	rs := tr.Start(PhaseReduce)
	rs.End()
	c.MergeTrace("net1", "sympvl", tr)
	c.Add(CtrROMCacheHits, 3)

	var b1, b2 bytes.Buffer
	if err := c.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", b1.String(), b2.String())
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if decoded.SchemaVersion != SchemaVersion || decoded.Workers != 2 {
		t.Fatalf("schema fields lost: %+v", decoded)
	}
	if len(decoded.Counters) != int(NumCounters) {
		t.Fatalf("got %d counters, want all %d (zeros included)", len(decoded.Counters), NumCounters)
	}
	if decoded.Counters["newton_iterations"] != 7 || decoded.Counters["rom_cache_hits"] != 3 {
		t.Fatalf("counter values wrong: %v", decoded.Counters)
	}
	if _, ok := decoded.Phases["prune"]; !ok {
		t.Fatalf("prune phase missing: %v", decoded.Phases)
	}
	if decoded.Clusters[0].Victim != "net1" || decoded.Clusters[0].Stage != "sympvl" {
		t.Fatalf("cluster entry wrong: %+v", decoded.Clusters[0])
	}
	if !strings.Contains(b1.String(), "\"max_in_flight\"") {
		t.Fatalf("queue section missing:\n%s", b1.String())
	}
}

// TestSpanDurations checks spans accumulate plausible monotonic durations.
func TestSpanDurations(t *testing.T) {
	tr := NewCollector().NewTrace()
	sp := tr.Start(PhaseTransient)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	cm := tr.clusterMetrics("v", "sympvl")
	pm := cm.Phases["transient"]
	if pm.Count != 1 || pm.TotalNs < int64(time.Millisecond) {
		t.Fatalf("span not recorded: %+v", pm)
	}
	if pm.MaxNs != pm.TotalNs || pm.MeanNs != pm.TotalNs {
		t.Fatalf("single-span stats inconsistent: %+v", pm)
	}
}

// BenchmarkNilTrace pins the disabled-collector overhead: a handful of
// nil-receiver calls, no allocation.
func BenchmarkNilTrace(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(PhaseTransient)
		tr.Add(CtrNewtonIterations, 40)
		tr.Add(CtrWoodburySolves, 40)
		sp.End()
	}
}
