// Package obs is the engine's observability layer: per-cluster, per-phase
// span timing and cheap counters, aggregated into a machine-readable
// metrics snapshot.
//
// The design splits responsibilities between two types:
//
//   - Trace is a per-cluster, single-goroutine recorder. The engine creates
//     one Trace per analyzed cluster and threads it (as a plain pointer in
//     the options structs) down through glitch → sympvl/romsim. All Trace
//     methods are nil-safe no-ops, so a disabled collector costs one nil
//     check per instrumentation site — hot loops keep their counts in local
//     variables and post them once per call, never per iteration.
//
//   - Collector is the run-level aggregator shared by every worker. It is
//     safe for concurrent use, but the engine only touches it concurrently
//     for the in-flight gauge; traces are merged serially, in cluster
//     order, during result assembly — which is what makes the aggregated
//     counter totals of a serial run and a Workers=N run identical.
//
// Durations come from time.Since, which uses the monotonic clock reading
// embedded in time.Now. Counter totals are scheduling-independent; span
// durations, per-cluster counter attribution (a ROM-cache flight is counted
// where it was computed) and the queue gauge are run-dependent by nature
// and documented as such.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one timed stage of the cluster-verification pipeline.
type Phase int

// The pipeline phases, in flow order.
const (
	// PhasePrune is the run-level coupling-graph pruning and clustering
	// stage (one span per run, recorded on the Collector itself).
	PhasePrune Phase = iota
	// PhaseFingerprint is the structural fingerprint serialization that
	// keys the ROM cache.
	PhaseFingerprint
	// PhaseReduce is the SyMPVL reduction, cache lookup included: a cache
	// hit shows up as a near-zero reduce span.
	PhaseReduce
	// PhaseDiagonalize is the termination fold-in and eigendecomposition
	// of the reduced model (romsim's per-analysis setup).
	PhaseDiagonalize
	// PhaseTransient is the Newton trapezoidal time-stepping loop.
	PhaseTransient

	// NumPhases bounds the Phase enum.
	NumPhases
)

// String names the phase as it appears in metrics snapshots.
func (p Phase) String() string {
	switch p {
	case PhasePrune:
		return "prune"
	case PhaseFingerprint:
		return "fingerprint"
	case PhaseReduce:
		return "reduce"
	case PhaseDiagonalize:
		return "diagonalize"
	case PhaseTransient:
		return "transient"
	default:
		return "phase(?)"
	}
}

// Counter identifies one aggregate event count.
type Counter int

// The engine's counters.
const (
	// CtrLanczosIterations counts completed block Lanczos steps across all
	// actually-performed SyMPVL reductions (cache hits add nothing).
	CtrLanczosIterations Counter = iota
	// CtrNewtonIterations counts Newton iterations across all transients,
	// DC initialization included.
	CtrNewtonIterations
	// CtrNewtonDivergences counts Newton loops that exhausted their budget.
	CtrNewtonDivergences
	// CtrWoodburySolves counts Sherman–Morrison–Woodbury rank-k Jacobian
	// solves (the Eq. 7 fast path; dense-ablation and rank-0 solves are
	// not counted).
	CtrWoodburySolves
	// CtrFallbackReduced..CtrFallbackUnverified count clusters by the
	// ladder rung that produced their result.
	CtrFallbackReduced
	CtrFallbackRegularized
	CtrFallbackDirectMNA
	CtrFallbackUnverified
	// CtrROMCacheHits, CtrROMCacheMisses and CtrROMCacheEvictions mirror
	// the run's ROM-cache statistics (recorded once, at run end).
	CtrROMCacheHits
	CtrROMCacheMisses
	CtrROMCacheEvictions
	// CtrPreparedReuses counts analyses that reused a memoized prepared
	// transient (romsim.Prepared) instead of re-running Prepare.
	CtrPreparedReuses
	// CtrScenariosBatched counts scenarios advanced through multi-RHS
	// Prepared.RunBatch sweeps (each batched column counts once).
	CtrScenariosBatched
	// CtrDiagonalizeSkipped counts termination-fold eigendecompositions
	// avoided by the prepared-transient layer: every scenario after the
	// first executed against one Prepared is a diagonalization the
	// per-Simulate path would have repeated.
	CtrDiagonalizeSkipped
	// CtrRungRetries counts transient-failure retries of a fallback-ladder
	// rung (Config.RungRetries): a cluster that timed out under load and was
	// re-attempted on the same rung before the ladder moved on.
	CtrRungRetries
	// CtrROMStoreHits counts reductions served from the disk-persistent ROM
	// store instead of being recomputed.
	CtrROMStoreHits
	// CtrROMStoreWrites counts freshly computed models written to the
	// disk-persistent ROM store.
	CtrROMStoreWrites
	// CtrCacheCorruptDiscarded counts persistent-store entries that failed
	// validation on load (truncated, bit-flipped, wrong version) and were
	// discarded and recomputed instead of being trusted.
	CtrCacheCorruptDiscarded
	// CtrScreenedRung0 counts clusters cleared by the rung-0 analytic
	// screen: their worst-case bound (inflated by the safety factor) stayed
	// below the noise margin, so no reduction or transient ever ran.
	CtrScreenedRung0
	// CtrScreenBoundEvals counts analytic bound evaluations, cleared or not
	// (degenerate "cannot screen" clusters included).
	CtrScreenBoundEvals
	// CtrScreenNearThreshold counts clusters whose bound was below the noise
	// margin but was denied clearance by the safety factor — the population
	// a tighter bound (or a bolder safety factor) would additionally screen.
	CtrScreenNearThreshold
	// CtrReverifyJobs counts incremental re-verification runs: a delta run
	// that spliced cached cluster results into a base report instead of
	// recomputing everything.
	CtrReverifyJobs
	// CtrClustersReused counts clusters whose signature matched the base run
	// during a reverify and whose result was spliced from the base report.
	CtrClustersReused
	// CtrClustersRecomputed counts clusters a reverify actually re-analyzed
	// (changed fingerprint, changed membership, or new victim).
	CtrClustersRecomputed
	// CtrPreparedStoreHits counts prepared-transient factorizations (the
	// termination fold + eigendecomposition numeric core) served from the
	// disk-persistent store — both the reduction and the diagonalization
	// were skipped.
	CtrPreparedStoreHits
	// CtrNetsStreamed counts nets ingested by the streaming pipeline
	// (Config.StreamIngest): parse → extract → cluster without ever
	// materializing the whole design.
	CtrNetsStreamed
	// CtrClustersEmittedEager counts clusters handed to the worker pool the
	// moment their coupled component closed, while ingest was still running.
	CtrClustersEmittedEager
	// CtrFrontierPeakNets records the high-water count of simultaneously
	// live (unretired) nets in the streaming frontier — the streamed run's
	// memory high-water proxy.
	CtrFrontierPeakNets

	// NumCounters bounds the Counter enum.
	NumCounters
)

// String names the counter as it appears in metrics snapshots.
func (c Counter) String() string {
	switch c {
	case CtrLanczosIterations:
		return "lanczos_iterations"
	case CtrNewtonIterations:
		return "newton_iterations"
	case CtrNewtonDivergences:
		return "newton_divergences"
	case CtrWoodburySolves:
		return "woodbury_solves"
	case CtrFallbackReduced:
		return "fallback_reduced"
	case CtrFallbackRegularized:
		return "fallback_regularized"
	case CtrFallbackDirectMNA:
		return "fallback_direct_mna"
	case CtrFallbackUnverified:
		return "fallback_unverified"
	case CtrROMCacheHits:
		return "rom_cache_hits"
	case CtrROMCacheMisses:
		return "rom_cache_misses"
	case CtrROMCacheEvictions:
		return "rom_cache_evictions"
	case CtrPreparedReuses:
		return "prepared_reuses"
	case CtrScenariosBatched:
		return "scenarios_batched"
	case CtrDiagonalizeSkipped:
		return "diagonalize_skipped"
	case CtrRungRetries:
		return "rung_retries"
	case CtrROMStoreHits:
		return "rom_store_hits"
	case CtrROMStoreWrites:
		return "rom_store_writes"
	case CtrCacheCorruptDiscarded:
		return "cache_corrupt_discarded"
	case CtrScreenedRung0:
		return "screened_rung0"
	case CtrScreenBoundEvals:
		return "screen_bound_evals"
	case CtrScreenNearThreshold:
		return "screen_near_threshold"
	case CtrReverifyJobs:
		return "reverify_jobs"
	case CtrClustersReused:
		return "clusters_reused"
	case CtrClustersRecomputed:
		return "clusters_recomputed"
	case CtrPreparedStoreHits:
		return "prepared_store_hits"
	case CtrNetsStreamed:
		return "nets_streamed"
	case CtrClustersEmittedEager:
		return "clusters_emitted_eager"
	case CtrFrontierPeakNets:
		return "frontier_peak_nets"
	default:
		return "counter(?)"
	}
}

// spanStat accumulates the durations of one phase.
type spanStat struct {
	count   int64
	totalNs int64
	maxNs   int64
}

func (s *spanStat) observe(ns int64) {
	s.count++
	s.totalNs += ns
	if ns > s.maxNs {
		s.maxNs = ns
	}
}

func (s *spanStat) merge(o spanStat) {
	s.count += o.count
	s.totalNs += o.totalNs
	if o.maxNs > s.maxNs {
		s.maxNs = o.maxNs
	}
}

// Trace records one cluster's phases and counters. It is owned by a single
// goroutine (the worker analyzing the cluster) and merged into the Collector
// exactly once, during serial result assembly. All methods are safe on a nil
// receiver, which is the entire disabled-collector fast path.
type Trace struct {
	counters [NumCounters]int64
	spans    [NumPhases]spanStat
}

// Add increments counter c by n. No-op on a nil Trace.
func (t *Trace) Add(c Counter, n int64) {
	if t == nil {
		return
	}
	t.counters[c] += n
}

// Start opens a span for phase p; close it with End. On a nil Trace the
// returned Span is inert and End is a no-op.
func (t *Trace) Start(p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{trace: t, phase: p, start: time.Now()} //xtlint:wallclock span timing is a diagnostic; durations never enter report bytes
}

// Span is an open phase timing. The zero Span is inert.
type Span struct {
	trace *Trace
	coll  *Collector
	phase Phase
	start time.Time
}

// End records the span's monotonic-clock duration. Calling End on an inert
// Span does nothing; a Span whose End is never reached (error return mid-
// phase) is simply not recorded.
func (s Span) End() {
	if s.trace == nil && s.coll == nil {
		return
	}
	ns := time.Since(s.start).Nanoseconds() //xtlint:wallclock span timing is a diagnostic; durations never enter report bytes
	if s.trace != nil {
		s.trace.spans[s.phase].observe(ns)
	}
	if s.coll != nil {
		s.coll.mu.Lock()
		s.coll.spans[s.phase].observe(ns)
		s.coll.mu.Unlock()
	}
}

// Collector aggregates one verification run. Create one per run with
// NewCollector; a nil *Collector disables all instrumentation at near-zero
// cost (every method is nil-safe).
type Collector struct {
	// Gauge fields are updated concurrently by the worker pool.
	submitted   atomic.Int64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	mu       sync.Mutex
	counters [NumCounters]int64
	spans    [NumPhases]spanStat
	clusters []ClusterMetrics
	workers  int
	wallNs   int64
}

// NewCollector returns an empty collector for one run.
func NewCollector() *Collector { return &Collector{} }

// NewTrace returns a fresh per-cluster trace, or nil when the collector is
// nil — so the disabled path threads a nil Trace everywhere for free.
func (c *Collector) NewTrace() *Trace {
	if c == nil {
		return nil
	}
	return &Trace{}
}

// Add increments a run-level counter directly on the collector.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[ctr] += n
	c.mu.Unlock()
}

// Start opens a run-level span (used for the prune phase, which happens
// once per run, outside any cluster).
func (c *Collector) Start(p Phase) Span {
	if c == nil {
		return Span{}
	}
	return Span{coll: c, phase: p, start: time.Now()} //xtlint:wallclock span timing is a diagnostic; durations never enter report bytes
}

// MergeTrace folds one cluster's trace into the aggregate and appends its
// per-cluster metrics entry. The engine calls it serially, in cluster
// order, so both the aggregate totals and the Clusters slice ordering are
// identical between serial and parallel runs.
func (c *Collector) MergeTrace(victim, stage string, t *Trace) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range t.counters {
		c.counters[i] += t.counters[i]
	}
	for i := range t.spans {
		c.spans[i].merge(t.spans[i])
	}
	c.clusters = append(c.clusters, t.clusterMetrics(victim, stage))
}

// TaskStarted marks one cluster entering a worker; pair with TaskDone. The
// in-flight gauge's high-water mark lands in the snapshot's queue section.
func (c *Collector) TaskStarted() {
	if c == nil {
		return
	}
	c.submitted.Add(1)
	cur := c.inFlight.Add(1)
	for {
		max := c.maxInFlight.Load()
		if cur <= max || c.maxInFlight.CompareAndSwap(max, cur) {
			return
		}
	}
}

// TaskDone marks one cluster leaving its worker.
func (c *Collector) TaskDone() {
	if c == nil {
		return
	}
	c.inFlight.Add(-1)
}

// SetWorkers records the resolved worker-pool size.
func (c *Collector) SetWorkers(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.workers = n
	c.mu.Unlock()
}

// SetWallTime records the end-to-end cluster-analysis wall time.
func (c *Collector) SetWallTime(d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.wallNs = d.Nanoseconds()
	c.mu.Unlock()
}
