package obs_test

import (
	"sort"
	"testing"

	"xtverify/internal/lint"
	"xtverify/internal/obs"
)

// TestSchemaV4CounterKeySet is the two-way pin between the runtime metrics
// schema and the statically declared registry: the exact set of names the
// Counter enum emits must equal lint.SchemaV4Counters, which the counterreg
// analyzer checks every call-site literal against. Adding, renaming or
// retiring a counter therefore has to touch both lists — and this test plus
// the analyzer keep every lookup in the tree honest in between.
func TestSchemaV4CounterKeySet(t *testing.T) {
	if obs.SchemaVersion != 4 {
		t.Fatalf("metrics schema version is %d; this golden pins v4 — update lint.SchemaV4Counters and this test together", obs.SchemaVersion)
	}
	names := make([]string, 0, int(obs.NumCounters))
	seen := make(map[string]bool, int(obs.NumCounters))
	for c := obs.Counter(0); c < obs.NumCounters; c++ {
		name := c.String()
		if name == "" {
			t.Fatalf("counter %d has no String() name", c)
		}
		if seen[name] {
			t.Fatalf("counter name %q emitted twice", name)
		}
		seen[name] = true
		names = append(names, name)
	}
	sort.Strings(names)

	want := lint.SchemaV4Counters
	if len(names) != len(want) {
		t.Fatalf("runtime enum has %d counters, lint.SchemaV4Counters declares %d:\n  enum:     %v\n  declared: %v",
			len(names), len(want), names, want)
	}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("key set mismatch at %d: enum %q vs declared %q", i, names[i], want[i])
		}
	}

	// The snapshot surface agrees: every declared key is present (zeros
	// included) and nothing else is.
	snap := obs.NewCollector().Snapshot()
	if len(snap.Counters) != len(want) {
		t.Fatalf("snapshot emits %d counter keys, want %d", len(snap.Counters), len(want))
	}
	for _, k := range want {
		if _, ok := snap.Counters[k]; !ok {
			t.Errorf("snapshot is missing declared counter %q", k)
		}
	}
}
