package sta

import (
	"testing"

	"xtverify/internal/design"
	"xtverify/internal/dsp"
	"xtverify/internal/extract"
)

func annotated(t *testing.T, cfg dsp.Config) (*design.Design, *extract.Parasitics) {
	t.Helper()
	d, err := dsp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	if err := Annotate(d, p, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestAnnotateAllWindowsValid(t *testing.T) {
	d, _ := annotated(t, dsp.Config{Seed: 2, Channels: 1, TracksPerChannel: 40, ChannelLengthUM: 900, LatchFraction: 0.2, ClockSpines: 1})
	for _, n := range d.Nets {
		if !n.Window.Valid {
			t.Fatalf("net %s window not set", n.Name)
		}
		if n.Window.Late < n.Window.Early {
			t.Errorf("net %s window inverted: %+v", n.Name, n.Window)
		}
		if n.Window.Slew <= 0 {
			t.Errorf("net %s has non-positive slew", n.Name)
		}
	}
}

func TestFaninWidensWindow(t *testing.T) {
	d, p := annotated(t, dsp.Config{Seed: 9, Channels: 1, TracksPerChannel: 60, ChannelLengthUM: 1200})
	// A net with fanins must arrive no earlier than the gate delay after
	// its earliest fanin.
	checked := 0
	for _, n := range d.Nets {
		if len(n.Fanins) == 0 {
			continue
		}
		for _, f := range n.Fanins {
			if n.Window.Late < d.Nets[f].Window.Late {
				t.Errorf("net %s late %g before fanin %s late %g",
					n.Name, n.Window.Late, d.Nets[f].Name, d.Nets[f].Window.Late)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no fanin nets generated")
	}
	_ = p
}

func TestSequentialLaunchWindow(t *testing.T) {
	d, _ := annotated(t, dsp.Config{Seed: 4, Channels: 1, TracksPerChannel: 80, ChannelLengthUM: 1000})
	opt := DefaultOptions()
	found := false
	for _, n := range d.Nets {
		if n.Drivers[0].Cell.Sequential && len(n.Fanins) == 0 && !n.IsBus() {
			found = true
			if n.Window.Early < opt.ClkToQMin {
				t.Errorf("sequential net %s early %g before clk-to-q min", n.Name, n.Window.Early)
			}
		}
	}
	if !found {
		t.Skip("no sequential driver this seed")
	}
}

func TestClockWindowTight(t *testing.T) {
	d, _ := annotated(t, dsp.Config{Seed: 6, Channels: 1, TracksPerChannel: 20, ChannelLengthUM: 2000, ClockSpines: 2})
	for _, n := range d.Nets {
		if !n.ClockNet {
			continue
		}
		width := n.Window.Late - n.Window.Early
		if width > 100e-12 {
			t.Errorf("clock window %g too wide", width)
		}
		return
	}
	t.Fatal("no clock net")
}

func TestCycleDetection(t *testing.T) {
	d, err := dsp.Generate(dsp.Config{Seed: 8, Channels: 1, TracksPerChannel: 5, ChannelLengthUM: 300})
	if err != nil {
		t.Fatal(err)
	}
	p, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	// Force a cycle.
	d.Nets[0].Fanins = []int{1}
	d.Nets[1].Fanins = []int{0}
	if err := Annotate(d, p, DefaultOptions()); err == nil {
		t.Error("cycle not detected")
	}
}

func TestLongerNetsHaveLaterWindows(t *testing.T) {
	// Two isolated nets with identical drivers: the longer one must show a
	// larger gate+wire delay (later window for same launch).
	short, err := dsp.ParallelWires(1, 100, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	long, err := dsp.ParallelWires(1, 3000, 1.2, []string{"INV_X2"}, "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := extract.Extract(short, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := extract.Extract(long, extract.Tech025())
	if err != nil {
		t.Fatal(err)
	}
	if err := Annotate(short, ps, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(long, pl, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if long.Nets[0].Window.Late <= short.Nets[0].Window.Late {
		t.Errorf("long net window %g not later than short %g",
			long.Nets[0].Window.Late, short.Nets[0].Window.Late)
	}
}

func TestApplyCouplingDeltasWidensOnly(t *testing.T) {
	d, _ := annotated(t, dsp.Config{Seed: 2, Channels: 1, TracksPerChannel: 40, ChannelLengthUM: 900, LatchFraction: 0.2, ClockSpines: 1})
	w0 := d.Nets[0].Window
	w1 := d.Nets[1].Window
	w2 := d.Nets[2].Window
	n, err := ApplyCouplingDeltas(d, []WindowAdjustment{
		{Net: 0, DeltaS: 30e-12},  // slowdown: Late extends
		{Net: 1, DeltaS: -10e-12}, // speedup: Early pulls in
		{Net: 2, DeltaS: 0},       // no change: skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("widened %d windows, want 2", n)
	}
	if got := d.Nets[0].Window; got.Late != w0.Late+30e-12 || got.Early != w0.Early {
		t.Errorf("net 0 window %+v, want Late extended from %+v", got, w0)
	}
	if got := d.Nets[1].Window; got.Early != w1.Early-10e-12 || got.Late != w1.Late {
		t.Errorf("net 1 window %+v, want Early pulled in from %+v", got, w1)
	}
	if got := d.Nets[2].Window; got != w2 {
		t.Errorf("net 2 window %+v changed, want untouched %+v", got, w2)
	}
	// Every applied adjustment must only ever widen the window.
	if d.Nets[0].Window.Late-d.Nets[0].Window.Early < w0.Late-w0.Early ||
		d.Nets[1].Window.Late-d.Nets[1].Window.Early < w1.Late-w1.Early {
		t.Error("a coupling delta narrowed a window")
	}
}

func TestApplyCouplingDeltasRejectsBadNet(t *testing.T) {
	d, _ := annotated(t, dsp.Config{Seed: 2, Channels: 1, TracksPerChannel: 40, ChannelLengthUM: 900})
	if _, err := ApplyCouplingDeltas(d, []WindowAdjustment{{Net: len(d.Nets), DeltaS: 1e-12}}); err == nil {
		t.Error("out-of-range net index accepted")
	}
}
