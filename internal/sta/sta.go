// Package sta is a lightweight static timing analyzer whose only job in the
// verification flow is to attach switching windows ([early, late] arrival
// ranges plus driver input slews) to every net. The paper uses this timing
// correlation information to exclude aggressors that cannot switch while the
// victim is sensitive, tightening the otherwise worst-case analysis.
//
// The delay model is deliberately simple — an effective-resistance gate
// delay against the extracted net capacitance plus an Elmore wire term — but
// it produces the structurally correct windows the pruning and alignment
// policies need.
package sta

import (
	"fmt"
	"math"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
)

// Options configures the analysis.
type Options struct {
	// ClockPeriod is the launch period (seconds); windows are not folded,
	// the period only scales the sequential launch uncertainty.
	ClockPeriod float64
	// ClkToQMin and ClkToQMax bound sequential output launch times.
	ClkToQMin, ClkToQMax float64
	// IntrinsicDelay is the per-gate fixed delay floor.
	IntrinsicDelay float64
	// DefaultSlew is used at launch points.
	DefaultSlew float64
}

// DefaultOptions returns the standard 0.25 µm settings.
func DefaultOptions() Options {
	return Options{
		ClockPeriod:    5e-9,
		ClkToQMin:      80e-12,
		ClkToQMax:      250e-12,
		IntrinsicDelay: 25e-12,
		DefaultSlew:    120e-12,
	}
}

// Annotate computes and stores a switching window on every net of the
// design, using the extracted capacitances as loads. It returns an error on
// combinational cycles.
func Annotate(d *design.Design, par *extract.Parasitics, opt Options) error {
	if opt.ClockPeriod == 0 {
		opt = DefaultOptions()
	}
	n := len(d.Nets)
	if par == nil || len(par.Nets) != n {
		return fmt.Errorf("sta: parasitics do not match design")
	}
	// Topological order over the fanin DAG (Kahn).
	indeg := make([]int, n)
	fanout := make([][]int, n)
	for i, net := range d.Nets {
		for _, f := range net.Fanins {
			if f < 0 || f >= n {
				return fmt.Errorf("sta: net %q fanin %d out of range", net.Name, f)
			}
			indeg[i]++
			fanout[f] = append(fanout[f], i)
		}
	}
	queue := make([]int, 0, n)
	for i, deg := range indeg {
		if deg == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		net := d.Nets[i]
		early, late, slew := launchWindow(net, opt)
		if len(net.Fanins) > 0 {
			early, late = math.Inf(1), math.Inf(-1)
			slew = 0
			for _, f := range net.Fanins {
				w := d.Nets[f].Window
				early = math.Min(early, w.Early)
				late = math.Max(late, w.Late)
				slew = math.Max(slew, w.Slew)
			}
		}
		gd, outSlew := gateDelay(net, par.Nets[i], slew, opt)
		net.Window = design.Window{
			Early: early + gd,
			Late:  late + gd,
			Slew:  outSlew,
			Valid: true,
		}
		for _, o := range fanout[i] {
			indeg[o]--
			if indeg[o] == 0 {
				queue = append(queue, o)
			}
		}
	}
	if processed != n {
		return fmt.Errorf("sta: combinational cycle detected (%d of %d nets ordered)", processed, n)
	}
	return nil
}

// WindowAdjustment widens one net's switching window by a coupling-induced
// delay change, re-aligning the STA view with the coupling-aware transient
// delays.
type WindowAdjustment struct {
	// Net is the design net index.
	Net int
	// DeltaS is the worst-case coupled delay change in seconds: positive
	// (aggressors opposing) extends the Late bound, negative (a coupling
	// speedup) pulls the Early bound in. Either way the window only widens —
	// re-alignment must stay conservative for the pruning policies that
	// consume it.
	DeltaS float64
}

// ApplyCouplingDeltas folds coupling-induced delay changes back into the
// annotated switching windows: one crosstalk-aware STA re-alignment pass.
// Nets without a valid window (or a zero delta) are skipped; the number of
// windows actually widened is returned. Call after Annotate.
func ApplyCouplingDeltas(d *design.Design, adj []WindowAdjustment) (int, error) {
	changed := 0
	for _, a := range adj {
		if a.Net < 0 || a.Net >= len(d.Nets) {
			return changed, fmt.Errorf("sta: adjustment net %d out of range", a.Net)
		}
		w := &d.Nets[a.Net].Window
		if !w.Valid || a.DeltaS == 0 {
			continue
		}
		if a.DeltaS > 0 {
			w.Late += a.DeltaS
		} else {
			w.Early += a.DeltaS
		}
		changed++
	}
	return changed, nil
}

// launchWindow gives the arrival window at the driver input for nets without
// fanins: clock nets launch at the edge; sequential outputs launch after
// clk-to-q; primary-input-like nets get the full early clock region.
func launchWindow(net *design.Net, opt Options) (early, late, slew float64) {
	if net.ClockNet {
		return 0, 20e-12, opt.DefaultSlew / 2
	}
	drv := net.Drivers[0].Cell
	if drv.Sequential {
		return opt.ClkToQMin, opt.ClkToQMax, opt.DefaultSlew
	}
	return 0, 0.1 * opt.ClockPeriod, opt.DefaultSlew
}

// gateDelay estimates driver gate delay and output slew against the
// extracted load, including an Elmore wire term to the farthest receiver.
func gateDelay(net *design.Net, rc *extract.NetRC, inSlew float64, opt Options) (delay, outSlew float64) {
	load := rc.TotalCapF()
	// Use the cheaper closed-form drive resistance (characterization-free)
	// for STA; the detailed models are reserved for cluster analysis.
	drv := strongestDriver(net)
	r := cells.EstimateDriveResistance(drv, true)
	if rf := cells.EstimateDriveResistance(drv, false); rf > r {
		r = rf // pessimistic edge
	}
	const ln2 = 0.6931471805599453
	wire := elmoreWorst(rc)
	delay = opt.IntrinsicDelay + inSlew/4 + ln2*(r*load+wire)
	outSlew = 2 * (ln2*r*load + wire)
	if outSlew < opt.DefaultSlew/2 {
		outSlew = opt.DefaultSlew / 2
	}
	return delay, outSlew
}

func strongestDriver(net *design.Net) *cells.Cell {
	best := net.Drivers[0].Cell
	for _, p := range net.Drivers[1:] {
		if p.Cell.Wn > best.Wn {
			best = p.Cell
		}
	}
	return best
}

// elmoreWorst returns a worst-receiver Elmore wire delay approximation:
// total wire resistance times half the total capacitance.
func elmoreWorst(rc *extract.NetRC) float64 {
	rTot := 0.0
	for _, r := range rc.Res {
		rTot += r.Ohms
	}
	return rTot * rc.TotalCapF() / 2
}
