module xtverify

go 1.22
