package xtverify

import (
	"fmt"

	"xtverify/internal/cells"
)

// ErrUnknownCell is the typed error for cell names not present in the
// bundled library. Every public entry point that takes a cell name —
// DriveResistance, AnalyzeCoupledWires, the DSP generators — returns an
// error matching this (via errors.Is) instead of panicking.
var ErrUnknownCell = cells.ErrUnknownCell

// CellInfo describes one library cell for API consumers.
type CellInfo struct {
	Name string
	// DriveStrength is the relative output drive (X1 = 1).
	DriveStrength float64
	// Inputs is the logic input count.
	Inputs int
	// InputCapF is the input pin capacitance in farads.
	InputCapF float64
	// TriState marks bus drivers; Sequential marks storage cells.
	TriState, Sequential bool
}

// Cells enumerates the bundled 53-cell 0.25 µm library.
func Cells() []CellInfo {
	lib := cells.Library()
	out := make([]CellInfo, 0, len(lib))
	for _, c := range lib {
		out = append(out, CellInfo{
			Name:          c.Name,
			DriveStrength: c.Strength,
			Inputs:        c.Inputs,
			InputCapF:     c.InputCapF,
			TriState:      c.TriState,
			Sequential:    c.Sequential,
		})
	}
	return out
}

func libraryNames() []string {
	lib := cells.Library()
	out := make([]string, 0, len(lib))
	for _, c := range lib {
		out = append(out, c.Name)
	}
	return out
}

// DriveResistance characterizes the named cell against the bundled SPICE
// engine and returns its effective linear drive resistances for rising and
// falling output transitions (the Section 4.1 timing-library model).
func DriveResistance(cellName string) (riseOhms, fallOhms float64, err error) {
	c, err := cells.Lookup(cellName)
	if err != nil {
		return 0, 0, fmt.Errorf("xtverify: %w", err)
	}
	tm, err := cells.CharacterizeCached(c)
	if err != nil {
		return 0, 0, err
	}
	return tm.DriveResistance(true), tm.DriveResistance(false), nil
}
