package xtverify

import (
	"fmt"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/waveform"
)

// WireAnalysis is the quickstart-level API: a bank of parallel coupled wires
// (the paper's Figure 1 structure) analyzed for glitch and coupled delay.
type WireAnalysis struct {
	// Wires is the number of parallel lines (the middle one is the victim).
	Wires int
	// LengthUM is the coupled run length in micrometers.
	LengthUM float64
	// PitchUM is the wire pitch; 1.2 µm (minimum) if zero.
	PitchUM float64
	// DriverCell names the library cell driving every wire ("INV_X2" if
	// empty). Use ListCells to enumerate the library.
	DriverCell string
	// ReceiverCell names the load cell ("INV_X1" if empty).
	ReceiverCell string
	// Model selects the driver model (NonlinearCellModel recommended).
	Model DriverModel
}

// WireResult holds the quickstart outputs.
type WireResult struct {
	// GlitchV is the peak glitch at the victim receiver for rising
	// aggressors against a quiet low victim.
	GlitchV float64
	// GlitchFracVdd is GlitchV/Vdd.
	GlitchFracVdd float64
	// RiseDelayCoupled and RiseDelayDecoupled are victim delays with
	// opposite-switching aggressors vs grounded coupling.
	RiseDelayCoupled, RiseDelayDecoupled float64
	// FallDelayCoupled and FallDelayDecoupled are the falling-edge
	// counterparts.
	FallDelayCoupled, FallDelayDecoupled float64
	// VictimWave is the victim receiver glitch waveform.
	VictimWave *waveform.Waveform
}

// AnalyzeCoupledWires runs the Figure 1 experiment for one geometry.
func AnalyzeCoupledWires(w WireAnalysis) (*WireResult, error) {
	if w.Wires < 2 {
		return nil, fmt.Errorf("xtverify: need at least 2 wires, got %d", w.Wires)
	}
	if w.LengthUM <= 0 {
		return nil, fmt.Errorf("xtverify: wire length must be positive")
	}
	if w.PitchUM == 0 {
		w.PitchUM = 1.2
	}
	if w.DriverCell == "" {
		w.DriverCell = "INV_X2"
	}
	if w.ReceiverCell == "" {
		w.ReceiverCell = "INV_X1"
	}
	d, err := dsp.ParallelWires(w.Wires, w.LengthUM, w.PitchUM, []string{w.DriverCell}, w.ReceiverCell)
	if err != nil {
		return nil, err
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		return nil, err
	}
	victim := w.Wires / 2
	cl := prune.PruneVictim(par, victim, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	if len(cl.Aggressors) == 0 {
		return nil, fmt.Errorf("xtverify: no coupling at pitch %.2f µm", w.PitchUM)
	}
	tEnd := 4e-9
	if rcTime := 4 * 0.12 * w.LengthUM * (0.12e-15 * w.LengthUM); rcTime > 1e-9 {
		tEnd = 4e-9 + 4*rcTime
	}
	eng := glitch.NewEngine(par, glitch.Options{
		Model:     w.Model.kind(),
		FixedOhms: 1000,
		TEnd:      tEnd,
	})
	res := &WireResult{}
	g, err := eng.AnalyzeGlitch(cl, true)
	if err != nil {
		return nil, err
	}
	res.GlitchV = g.PeakV
	res.GlitchFracVdd = g.PeakV / Vdd
	res.VictimWave = g.ReceiverWave
	for _, rising := range []bool{true, false} {
		for _, coupled := range []bool{true, false} {
			dr, err := eng.AnalyzeDelay(cl, rising, coupled)
			if err != nil {
				return nil, err
			}
			switch {
			case rising && coupled:
				res.RiseDelayCoupled = dr.Delay
			case rising && !coupled:
				res.RiseDelayDecoupled = dr.Delay
			case !rising && coupled:
				res.FallDelayCoupled = dr.Delay
			default:
				res.FallDelayDecoupled = dr.Delay
			}
		}
	}
	return res, nil
}

// ListCells returns the names of every library cell.
func ListCells() []string {
	lib := libraryNames()
	return lib
}
