// romstore_api.go is the public face of the persistent ROM cache layer
// (internal/romstore + the in-memory internal/glitch LRU): the handles a
// daemon — or a CLI invoked thousands of times over one chip — uses to keep
// reduced models warm across runs and across process restarts.
package xtverify

import (
	"time"

	"xtverify/internal/glitch"
	"xtverify/internal/romstore"
)

// ROMCache is the in-memory, fingerprint-keyed LRU of SyMPVL reduced models
// with panic-safe singleflight. One cache may be shared across runs (and
// across concurrent runs) via Config.SharedROMCache.
type ROMCache = glitch.ROMCache

// DefaultROMCacheCap is the entry bound used when Config.ROMCacheCap is 0.
const DefaultROMCacheCap = glitch.DefaultROMCacheCap

// DefaultRungRetryBackoff is the base retry delay used when
// Config.RungRetries > 0 and RungRetryBackoff is 0.
const DefaultRungRetryBackoff = 25 * time.Millisecond

// NewROMCache returns an in-memory ROM cache bounded to capacity entries
// (DefaultROMCacheCap if capacity <= 0), for use as Config.SharedROMCache.
func NewROMCache(capacity int) *ROMCache { return glitch.NewROMCache(capacity) }

// ROMStore is the disk-persistent, crash-safe ROM cache level: versioned
// (format + go runtime) entries written via temp-file+rename, loaded
// defensively — a truncated, bit-flipped or wrong-version entry is
// discarded and recomputed, never trusted and never fatal.
type ROMStore = romstore.Store

// ROMStoreStats is a snapshot of a store's counters (hits, misses, writes,
// corrupt-discarded, I/O errors).
type ROMStoreStats = romstore.Stats

// OpenROMStore opens (creating if needed) a persistent ROM store rooted at
// dir, for use as Config.ROMStore.
func OpenROMStore(dir string) (*ROMStore, error) { return romstore.Open(dir) }
