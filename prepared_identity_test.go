package xtverify

import (
	"context"
	"strings"
	"testing"
)

// renderReport runs cfg on the small test design and returns the WriteText
// report without the diagnostics block (wall times differ run to run).
func renderReport(t *testing.T, cfg Config, parallel bool) string {
	t.Helper()
	v := engineVerifier(t, cfg)
	var (
		rep *Report
		err error
	)
	if parallel {
		rep, err = v.RunContext(context.Background())
	} else {
		rep, err = v.Run()
	}
	if err != nil {
		t.Fatal(err)
	}
	rep.Diagnostics = nil
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestPreparedByteIdenticalToSeedPath is the prepared-transient acceptance
// check: the amortized Prepare/RunBatch path must render a byte-identical
// WriteText report to the historical Simulate-per-scenario path, serially
// and under Workers=8 contention, with the ROM cache on and off.
func TestPreparedByteIdenticalToSeedPath(t *testing.T) {
	for _, model := range []DriverModel{FixedResistance, NonlinearCellModel} {
		base := Config{Model: model, CapRatioThreshold: 0.03}

		seed := base
		seed.DisablePreparedTransients = true
		want := renderReport(t, seed, false)

		for _, tc := range []struct {
			name     string
			parallel bool
			cacheOff bool
		}{
			{"serial", false, false},
			{"workers8", true, false},
			{"serial-nocache", false, true},
			{"workers8-nocache", true, true},
		} {
			cfg := base
			cfg.DisableROMCache = tc.cacheOff
			if tc.parallel {
				cfg.Workers = 8
			}
			if got := renderReport(t, cfg, tc.parallel); got != want {
				t.Errorf("model %v, %s: prepared report differs from seed path:\n--- seed ---\n%s--- prepared ---\n%s",
					model, tc.name, want, got)
			}
		}

		// The seed path must agree with itself in parallel too, so a
		// divergence above implicates the prepared layer, not scheduling.
		seedPar := seed
		seedPar.Workers = 8
		if got := renderReport(t, seedPar, true); got != want {
			t.Errorf("model %v: seed path itself diverges under Workers=8", model)
		}
	}
}

// TestPreparedMetricsCounters checks the amortization actually happened: a
// prepared-path run must report skipped diagonalizations and batched
// scenarios, and the seed path must report none.
func TestPreparedMetricsCounters(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 2}
	_, s := runWithCollector(t, cfg)
	// prepared_reuses stays 0 here by design: the verify flow batches both
	// glitch polarities through a single Prepare, so no memo lookup repeats.
	// Reuse across separate analyses is asserted in the glitch package.
	for _, ctr := range []string{"diagonalize_skipped", "scenarios_batched"} {
		if s.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (all: %v)", ctr, s.Counters[ctr], s.Counters)
		}
	}

	off := cfg
	off.DisablePreparedTransients = true
	_, sOff := runWithCollector(t, off)
	for _, ctr := range []string{"diagonalize_skipped", "scenarios_batched", "prepared_reuses"} {
		if sOff.Counters[ctr] != 0 {
			t.Errorf("seed path reported %s = %d, want 0", ctr, sOff.Counters[ctr])
		}
	}
}

// TestRefineTimingWindows exercises the crosstalk-aware STA re-alignment
// pass end to end: with annotated windows, the coupling delay changes must
// widen at least one window, and a subsequent run must still succeed.
func TestRefineTimingWindows(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, UseTimingWindows: true}
	v := engineVerifier(t, cfg)
	n, err := v.RefineTimingWindows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("refined %d windows, want > 0", n)
	}
	if _, err := v.RunContext(context.Background()); err != nil {
		t.Fatalf("run after refinement: %v", err)
	}
}
