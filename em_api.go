package xtverify

import (
	"fmt"
	"io"

	"xtverify/internal/em"
)

// EMOptions configures the electromigration current audit.
type EMOptions struct {
	// ActivityHz is the assumed switching rate of every net (200 MHz if
	// zero).
	ActivityHz float64
}

// EMResult reports one net's driver-current measures against the 0.25 µm
// aluminum current-density limits.
type EMResult struct {
	Net        string
	DriverCell string
	// IAvgMA, IRMSMA and IPeakMA are milliamps over one switching cycle.
	IAvgMA, IRMSMA, IPeakMA float64
	// RMSUtilization is IRMS over the wire's RMS limit (≥1 is a violation).
	RMSUtilization float64
	// Violation marks any exceeded limit (average, RMS or peak).
	Violation bool
}

// RunEM audits every non-clock net's driver current (average, RMS, peak)
// against electromigration limits — the analysis the paper's Section 4.2
// cites as requiring waveform-accurate cell models. Results are sorted
// worst-first by RMS utilization.
func (v *Verifier) RunEM(opt EMOptions) ([]EMResult, error) {
	if err := v.requireMaterialized("RunEM"); err != nil {
		return nil, err
	}
	rs, err := em.AnalyzeDesign(v.par, em.Options{ActivityHz: opt.ActivityHz})
	if err != nil {
		return nil, err
	}
	out := make([]EMResult, 0, len(rs))
	for _, r := range rs {
		util := 0.0
		if r.WidthM > 0 {
			util = r.IRMSA / (r.Limits.RMSAPerM * r.WidthM)
		}
		out = append(out, EMResult{
			Net:            r.Net,
			DriverCell:     r.DriverCell,
			IAvgMA:         r.IAvgA * 1e3,
			IRMSMA:         r.IRMSA * 1e3,
			IPeakMA:        r.IPeakA * 1e3,
			RMSUtilization: util,
			Violation:      r.Violated(),
		})
	}
	return out, nil
}

// WriteEMText renders an EM report.
func WriteEMText(w io.Writer, rs []EMResult) error {
	if _, err := fmt.Fprintf(w, "%-24s %-10s %9s %9s %9s %8s\n",
		"net", "driver", "Iavg(mA)", "Irms(mA)", "Ipk(mA)", "RMSutil"); err != nil {
		return err
	}
	for _, r := range rs {
		mark := ""
		if r.Violation {
			mark = "  << VIOLATION"
		}
		fmt.Fprintf(w, "%-24s %-10s %9.3f %9.3f %9.3f %7.0f%%%s\n",
			r.Net, r.DriverCell, r.IAvgMA, r.IRMSMA, r.IPeakMA, 100*r.RMSUtilization, mark)
	}
	return nil
}
