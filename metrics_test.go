package xtverify

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runWithCollector runs the engine with a fresh collector and returns the
// report's metrics snapshot.
func runWithCollector(t *testing.T, cfg Config) (*Report, *MetricsSnapshot) {
	t.Helper()
	cfg.Collector = NewMetricsCollector()
	rep, err := engineVerifier(t, cfg).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diagnostics == nil || rep.Diagnostics.Metrics == nil {
		t.Fatal("run with collector produced no metrics snapshot")
	}
	return rep, rep.Diagnostics.Metrics
}

// TestMetricsSerialVsParallelTotals is the tentpole's determinism acceptance
// check: aggregated counter totals must be identical between a serial run
// and a Workers=8 run.
func TestMetricsSerialVsParallelTotals(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 1}
	_, serial := runWithCollector(t, cfg)
	cfg.Workers = 8
	_, par := runWithCollector(t, cfg)

	js, _ := json.Marshal(serial.Counters)
	jp, _ := json.Marshal(par.Counters)
	if !bytes.Equal(js, jp) {
		t.Errorf("counter totals differ:\nserial:   %s\nparallel: %s", js, jp)
	}
	if len(serial.Clusters) != len(par.Clusters) {
		t.Fatalf("cluster metrics count: serial %d vs parallel %d", len(serial.Clusters), len(par.Clusters))
	}
	for i := range serial.Clusters {
		if serial.Clusters[i].Victim != par.Clusters[i].Victim ||
			serial.Clusters[i].Stage != par.Clusters[i].Stage {
			t.Errorf("cluster %d identity differs: serial %s/%s vs parallel %s/%s", i,
				serial.Clusters[i].Victim, serial.Clusters[i].Stage,
				par.Clusters[i].Victim, par.Clusters[i].Stage)
		}
	}
}

// TestMetricsPopulated checks a run actually fills in the documented
// counters, phase spans and queue gauge.
func TestMetricsPopulated(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 2}
	rep, s := runWithCollector(t, cfg)

	if s.SchemaVersion != 4 || s.Workers != rep.Diagnostics.Workers || s.WallNs <= 0 {
		t.Errorf("header fields wrong: %+v", s)
	}
	for _, ctr := range []string{"lanczos_iterations", "newton_iterations", "fallback_reduced"} {
		if s.Counters[ctr] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (all: %v)", ctr, s.Counters[ctr], s.Counters)
		}
	}
	// Verified counts both reduced-rung successes and rung-0 screened
	// clusters (screening is conservative verification, not degradation).
	if got := s.Counters["fallback_reduced"] + s.Counters["screened_rung0"]; got != int64(rep.Diagnostics.Verified) {
		t.Errorf("fallback_reduced + screened_rung0 = %d, want verified count %d", got, rep.Diagnostics.Verified)
	}
	if s.Counters["screen_bound_evals"] <= 0 {
		t.Errorf("screen_bound_evals = %d, want > 0 with screening enabled", s.Counters["screen_bound_evals"])
	}
	if s.Counters["rom_cache_hits"] != int64(rep.Diagnostics.ROMCacheHits) ||
		s.Counters["rom_cache_misses"] != int64(rep.Diagnostics.ROMCacheMisses) {
		t.Errorf("cache counters %v disagree with diagnostics (%d/%d)",
			s.Counters, rep.Diagnostics.ROMCacheHits, rep.Diagnostics.ROMCacheMisses)
	}
	for _, ph := range []string{"prune", "fingerprint", "reduce", "transient"} {
		pm, ok := s.Phases[ph]
		if !ok || pm.Count <= 0 || pm.TotalNs <= 0 {
			t.Errorf("phase %s not populated: %+v (ok=%v)", ph, pm, ok)
		}
	}
	if int(s.Queue.Submitted) != rep.AnalyzedVictims {
		t.Errorf("queue submitted = %d, want %d", s.Queue.Submitted, rep.AnalyzedVictims)
	}
	if s.Queue.MaxInFlight < 1 || s.Queue.MaxInFlight > 2 {
		t.Errorf("max_in_flight = %d with 2 workers", s.Queue.MaxInFlight)
	}
	if len(s.Clusters) != rep.AnalyzedVictims {
		t.Fatalf("cluster metrics entries %d, want %d", len(s.Clusters), rep.AnalyzedVictims)
	}
	// Every cluster entry carries its phase spans; per-cluster Lanczos
	// attribution is scheduling-dependent (cache flights), so only the
	// phases and stage are asserted here.
	for _, cm := range s.Clusters {
		if cm.Stage == "screened" {
			// A rung-0 cleared cluster never entered the pipeline: its bound
			// evaluation is counted but it must have no simulation spans.
			if len(cm.Phases) != 0 {
				t.Errorf("screened cluster %s has phase spans: %+v", cm.Victim, cm.Phases)
			}
			if cm.Counters["screened_rung0"] != 1 {
				t.Errorf("screened cluster %s counters: %+v", cm.Victim, cm.Counters)
			}
			continue
		}
		if cm.Stage != "sympvl" {
			t.Errorf("cluster %s stage %q, want sympvl", cm.Victim, cm.Stage)
		}
		if cm.Phases["transient"].Count <= 0 {
			t.Errorf("cluster %s has no transient span: %+v", cm.Victim, cm.Phases)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"schema_version\": 4") {
		t.Errorf("snapshot JSON missing schema version:\n%s", buf.String())
	}
}

// TestMetricsDoNotChangeReport pins the byte-identity contract: attaching a
// collector must not alter the textual report, and runs without a collector
// must carry no snapshot.
func TestMetricsDoNotChangeReport(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4}
	plain, err := engineVerifier(t, cfg).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Diagnostics.Metrics != nil {
		t.Error("run without collector produced a metrics snapshot")
	}
	observed, _ := runWithCollector(t, cfg)

	// Wall time differs between any two runs; normalize it so the
	// comparison isolates the collector's effect.
	plain.Diagnostics.WallTime = 0
	observed.Diagnostics.WallTime = 0

	var a, b bytes.Buffer
	if err := plain.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := observed.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("collector changed the textual report")
	}
}
