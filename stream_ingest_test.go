package xtverify

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
)

// streamBenchDSP is the acceptance design of the streaming-ingest work: the same
// 2-channel configuration BenchmarkChipVerify runs (~148 analyzed clusters).
func streamBenchDSP() DSPConfig {
	return DSPConfig{Seed: 1999, Channels: 2, TracksPerChannel: 80,
		ChannelLengthUM: 70, BusFraction: 0.05, LatchFraction: 0.25,
		ClockSpines: 1, TrackPitchUM: 1.8}
}

// streamReportText renders rep with every run-dependent diagnostic normalized
// away, leaving exactly the bytes the identity contract pins.
func streamReportText(t *testing.T, rep *Report) string {
	t.Helper()
	if rep.Diagnostics != nil {
		rep.Diagnostics.WallTime = 0
		for i := range rep.Diagnostics.Clusters {
			rep.Diagnostics.Clusters[i].WallTime = 0
		}
	}
	var b bytes.Buffer
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestStreamReportIdentityDSP is the tentpole acceptance test: a streamed
// run's report must be byte-identical to a materialized run's — serial,
// parallel, cache-off and warm-store alike, with screening on.
func TestStreamReportIdentityDSP(t *testing.T) {
	dspCfg := streamBenchDSP()

	variants := []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"serial", func(t *testing.T) Config { return Config{Model: TimingLibrary, Workers: 1} }},
		{"workers8", func(t *testing.T) Config { return Config{Model: TimingLibrary, Workers: 8} }},
		{"cache-off", func(t *testing.T) Config {
			return Config{Model: TimingLibrary,
				DisableROMCache: true, DisablePreparedTransients: true}
		}},
		{"warm-store", func(t *testing.T) Config {
			store, err := OpenROMStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return Config{Model: TimingLibrary, ROMStore: store}
		}},
	}
	for _, tc := range variants {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg(t)
			mv, err := NewVerifierFromDSP(dspCfg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			mrep, err := mv.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := streamReportText(t, mrep)
			if mrep.Prune.ClustersAnalyzed < 100 {
				t.Fatalf("bench design yields only %d clusters; the identity check needs a real population", mrep.Prune.ClustersAnalyzed)
			}

			cfg.StreamIngest = true
			runs := 1
			if tc.name == "warm-store" {
				runs = 2 // second run replays reductions from disk
			}
			for i := 0; i < runs; i++ {
				sv, err := NewVerifierFromDSP(dspCfg, cfg)
				if err != nil {
					t.Fatal(err)
				}
				srep, err := sv.RunContext(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if got := streamReportText(t, srep); got != want {
					t.Fatalf("streamed run %d report differs from materialized:\n--- streamed\n%s\n--- materialized\n%s", i, got, want)
				}
			}
		})
	}
}

// TestStreamReportIdentityDEF round-trips the bench design through DEF and
// checks a streamed DEF ingest against the materialized DEF ingest.
func TestStreamReportIdentityDEF(t *testing.T) {
	mv, err := NewVerifierFromDSP(streamBenchDSP(), Config{Model: TimingLibrary})
	if err != nil {
		t.Fatal(err)
	}
	var def bytes.Buffer
	if err := mv.WriteDEF(&def); err != nil {
		t.Fatal(err)
	}
	defBytes := def.Bytes()

	dv, err := NewVerifierFromDEF(bytes.NewReader(defBytes), Config{Model: TimingLibrary, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	drep, err := dv.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := streamReportText(t, drep)

	sv, err := NewVerifierFromDEF(bytes.NewReader(defBytes), Config{Model: TimingLibrary, StreamIngest: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	srep, err := sv.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := streamReportText(t, srep); got != want {
		t.Fatalf("streamed DEF report differs from materialized:\n--- streamed\n%s\n--- materialized\n%s", got, want)
	}
}

// TestStreamCounters checks the schema-v4 streaming counters against the
// report's own accounting.
func TestStreamCounters(t *testing.T) {
	cfg := Config{Model: TimingLibrary, StreamIngest: true, Collector: NewMetricsCollector()}
	sv, err := NewVerifierFromDSP(streamBenchDSP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Diagnostics.Metrics
	if s == nil {
		t.Fatal("no metrics snapshot")
	}
	if got := s.Counters["nets_streamed"]; got != int64(rep.NetCount) {
		t.Errorf("nets_streamed = %d, want the report's net count %d", got, rep.NetCount)
	}
	if got := s.Counters["clusters_emitted_eager"]; got != int64(rep.Prune.ClustersAnalyzed) {
		t.Errorf("clusters_emitted_eager = %d, want clusters analyzed %d", got, rep.Prune.ClustersAnalyzed)
	}
	peak := s.Counters["frontier_peak_nets"]
	if peak <= 0 || peak > int64(rep.NetCount) {
		t.Errorf("frontier_peak_nets = %d, want in (0, %d]", peak, rep.NetCount)
	}
}

// TestStreamGuards pins every materialized-only API to ErrStreamIngest on a
// streaming verifier, and the streaming-impossible knobs to construction
// failures.
func TestStreamGuards(t *testing.T) {
	sv, err := NewVerifierFromDSP(smallDSP(), Config{Model: FixedResistance, StreamIngest: true})
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	checks := map[string]func() error{
		"WriteSPEF":    func() error { return sv.WriteSPEF(&sink) },
		"WriteVerilog": func() error { return sv.WriteVerilog(&sink) },
		"WriteDEF":     func() error { return sv.WriteDEF(&sink) },
		"RunEM":        func() error { _, err := sv.RunEM(EMOptions{}); return err },
		"TraceGlitch":  func() error { _, err := sv.TraceGlitch("ch0/n0"); return err },
		"AdviseRepair": func() error { _, err := sv.AdviseRepair("ch0/n0"); return err },
		"RunTimingImpact": func() error {
			_, err := sv.RunTimingImpact(true)
			return err
		},
		"RefineTimingWindows": func() error {
			_, err := sv.RefineTimingWindows(context.Background())
			return err
		},
		"BaseRun": func() error { _, err := sv.BaseRun(&Report{Diagnostics: &Diagnostics{}}); return err },
		"Reverify": func() error {
			_, _, err := sv.Reverify(&BaseRun{})
			return err
		},
	}
	//xtlint:sorted independent per-API subchecks; no output ordering is asserted
	for name, fn := range checks {
		if err := fn(); !errors.Is(err, ErrStreamIngest) {
			t.Errorf("%s on a streaming verifier = %v, want ErrStreamIngest", name, err)
		}
	}
	if _, err := NewVerifierFromDSP(smallDSP(), Config{StreamIngest: true, UseTimingWindows: true}); !errors.Is(err, ErrStreamIngest) {
		t.Errorf("StreamIngest+UseTimingWindows construction = %v, want ErrStreamIngest", err)
	}
}

// TestStreamStrictFailFast checks strict mode through the streaming engine:
// an injected cluster failure aborts the run with that failure, not a
// cancellation echo.
func TestStreamStrictFailFast(t *testing.T) {
	sv, err := NewVerifierFromDSP(streamBenchDSP(), Config{Model: TimingLibrary, StreamIngest: true, Strict: true, Workers: 4, DisableScreening: true})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected cluster failure")
	sv.faultHook = func(victim string, stage FallbackStage) error {
		if victim == "ch1/n40" {
			return boom
		}
		return nil
	}
	_, err = sv.RunContext(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("strict streamed run = %v, want the injected failure", err)
	}
}

// descendingSource streams nets bottom-up — the frontier invariant's
// canonical violation.
type descendingSource struct{}

func (descendingSource) Stream(ctx context.Context, sink StreamSink) error {
	if err := sink.StartDesign("descending"); err != nil {
		return err
	}
	drv, _ := cells.ByName("BUF_X2")
	rcv, _ := cells.ByName("INV_X1")
	for i := 0; i < 4; i++ {
		y := float64(3-i) * 100 // 300, 200, 100, 0: strictly descending
		n := &design.Net{
			Name:      fmt.Sprintf("d%d", i),
			Drivers:   []design.Pin{{Inst: fmt.Sprintf("D%d", i), Cell: drv, Pin: "Z", PosX: 0, PosY: y}},
			Receivers: []design.Pin{{Inst: fmt.Sprintf("R%d", i), Cell: rcv, Pin: "A", PosX: 50, PosY: y}},
			Route:     []design.Segment{{Layer: 2, X0: 0, Y0: y, X1: 50, Y1: y, Width: 0.6}},
		}
		if err := sink.AddNet(n); err != nil {
			return err
		}
	}
	return nil
}

// TestStreamFrontierViolation checks that out-of-order input surfaces the
// typed extract.FrontierError instead of silently dropping couplings.
func TestStreamFrontierViolation(t *testing.T) {
	sv, err := NewStreamVerifier(descendingSource{}, Config{Model: FixedResistance, StreamFrontierSlackUM: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sv.RunContext(context.Background())
	var fe *extract.FrontierError
	if !errors.As(err, &fe) {
		t.Fatalf("descending-y stream = %v, want *extract.FrontierError", err)
	}
	//xtlint:errcmp parser-style test asserting the rendered invariant hint
	if !strings.Contains(fe.Error(), "frontier invariant") {
		t.Errorf("frontier error text %q lacks the invariant hint", fe.Error())
	}
}
