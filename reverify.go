// reverify.go is the incremental ECO re-verification layer.
//
// An engineering change order touches a handful of nets; re-running the full
// chip to re-certify it wastes almost all of its work. Reverify instead
// re-analyzes only the clusters the edit actually changed and splices the
// untouched results out of a completed base run:
//
//  1. BaseRun indexes a finished report by victim, pairing each cluster
//     outcome with a structural signature of everything the analysis
//     consumed — the pruned cluster's MNA circuit inputs, driver and
//     receiver cells, timing windows, logic correlations and coupling
//     weights;
//  2. Reverify, called on a verifier for the edited design, recomputes the
//     cluster set, compares fresh signatures against the base, and feeds a
//     reuse hook into the engine: matching clusters take their recorded
//     outcome verbatim, changed (or new) clusters run the normal ladder;
//  3. the engine assembles the spliced report through the exact code path a
//     cold run uses, so the output is byte-identical to re-running the
//     edited design from scratch — that identity is the contract the whole
//     layer is tested against.
//
// Reuse is sound because cluster analysis is a pure function of the
// signature's inputs: two clusters with equal signatures produce bit-equal
// results, so copying the base outcome is indistinguishable from recomputing
// it. Anything the signature cannot certify (an unknown victim, an unverified
// base outcome) falls back to recomputation — reuse is an optimization,
// never a correctness gamble.
//
// After a splice the base report is partially superseded: victims that were
// recomputed or dropped no longer mean anything on the base verifier, so
// they are marked stale there and AdviseRepair refuses them with
// ErrStaleReport (see repair_api.go).
package xtverify

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xtverify/internal/prune"
)

// CanonicalConfigKey returns a canonical string over every Config field that
// can change a report's verification content, computed after defaults are
// resolved — so a zero Config and an explicitly defaulted one share a key.
// Execution knobs that the byte-identity contract proves irrelevant (worker
// count, caches, prepared transients, collector) are deliberately excluded.
// Two runs with equal keys over the same design produce byte-identical
// reports; the daemon uses the key to address its report cache and Reverify
// uses it to refuse cross-config splices.
func (c Config) CanonicalConfigKey() string {
	c.setDefaults()
	var b strings.Builder
	f := func(v float64) string { return strconv.FormatUint(math.Float64bits(v), 16) }
	fmt.Fprintf(&b, "v1|m%d|fo%s|cr%s|tw%t|lc%t|gt%s|ma%d|ro%d|tr%t|st%t|ct%d|rr%d|rb%d|ds%t|sf%s",
		c.Model, f(c.FixedOhms), f(c.CapRatioThreshold),
		c.UseTimingWindows, c.UseLogicCorrelation, f(c.GlitchThresholdFrac),
		c.MaxAggressors, c.ReducedOrder, c.TransistorRecheck, c.Strict,
		c.ClusterTimeout.Nanoseconds(), c.RungRetries, c.RungRetryBackoff.Nanoseconds(),
		c.DisableScreening, f(c.ScreenSafetyFactor))
	return b.String()
}

// pruneOptions is the one place the engine's clustering policy is spelled
// out; runEngine, the repair advisor and the reverify signatures must all
// prune identically or their cluster sets would diverge.
func (v *Verifier) pruneOptions() prune.Options {
	return prune.Options{
		CapRatioThreshold: v.cfg.CapRatioThreshold,
		MinCouplingF:      0.5e-15,
		UseTimingWindows:  v.cfg.UseTimingWindows,
		MaxAggressors:     v.cfg.MaxAggressors,
	}
}

// clusterSignature fingerprints everything cluster analysis reads, beyond
// what the canonical config key already pins:
//
//   - the MNA circuit's inputs (prune.InputSigner: member wire RC, ports,
//     retained and grounded couplings in build order — names excluded, so a
//     pure rename still reuses; certifies the built circuit without paying
//     to build it);
//   - the victim's name (it appears verbatim in report lines);
//   - every member's driver cells and the victim's receiver cells (driver
//     strength, VTC classification, sequential flag);
//   - every member's STA window and pairwise complementary relations
//     (aggressor alignment and logic-correlation exclusion) — included
//     unconditionally, not just when the corresponding Config flag is on,
//     because the flags live in the config key and over-matching here only
//     costs a spurious recompute, never a wrong reuse;
//   - member total capacitances and the cluster's kept/dropped coupling
//     weights (the screen's bound inputs and the report's severity proxy).
//
// The encoding is length-prefixed and type-tagged so adjacent fields cannot
// alias; floats travel as raw IEEE-754 bits because reuse demands bit
// equality, not approximate equality.
func (v *Verifier) clusterSignature(cl *prune.Cluster) string {
	v.signerOnce.Do(func() { v.signer = prune.NewInputSigner(v.par) })
	buf := make([]byte, 0, 1024)
	str := func(s string) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	f64 := func(x float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	num := func(n int) {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(n)))
	}
	bit := func(b bool) {
		if b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	// Gmin/order/decoupling variants are pinned by the config key, so the
	// circuit-input form suffices here.
	buf = v.signer.AppendCluster(buf, cl)
	members := cl.MemberNets() // victim first, then aggressors in rank order
	num(len(members))
	for i, m := range members {
		n := v.des.Nets[m]
		if i == 0 {
			// Only the victim's name reaches the report; aggressor names are
			// excluded so renaming an aggressor does not defeat reuse.
			str(n.Name)
			num(len(n.Receivers))
			for _, r := range n.Receivers {
				str(r.Cell.Name)
			}
		}
		num(len(n.Drivers))
		for _, d := range n.Drivers {
			str(d.Cell.Name)
		}
		w := n.Window
		bit(w.Valid)
		f64(w.Early)
		f64(w.Late)
		f64(w.Slew)
		f64(v.par.Nets[m].TotalCapF())
	}
	for i, a := range members {
		for _, b := range members[i+1:] {
			bit(v.des.AreComplementary(a, b))
		}
	}
	f64(cl.KeptF)
	f64(cl.DroppedF)
	for _, a := range cl.Aggressors {
		f64(a.CouplingF)
	}
	return string(buf)
}

// signClusters computes every cluster's signature, fanning the work across
// the verifier's worker count: signing is a pure read of the parasitics and
// design (the same reads the engine's workers already perform concurrently),
// and it is a splice's dominant fixed cost.
func (v *Verifier) signClusters(clusters []*prune.Cluster) []string {
	out := make([]string, len(clusters))
	workers := v.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(clusters) {
		workers = len(clusters)
	}
	if workers < 2 {
		for i, cl := range clusters {
			out[i] = v.clusterSignature(cl)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = v.clusterSignature(clusters[i])
			}
		}()
	}
	for i := range clusters {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// baseEntry is one victim's reusable slice of a base run.
type baseEntry struct {
	sig       string
	outcome   ClusterOutcome
	violation *Violation
}

// BaseRun is a completed verification indexed for incremental reuse: one
// signed entry per cluster of the base design. Build it once per report
// (BaseRun walks every cluster) and splice any number of deltas against it.
type BaseRun struct {
	cfgKey string
	// owner is the verifier whose report was indexed; a splice marks the
	// victims it superseded as stale there.
	owner   *Verifier
	entries map[string]*baseEntry
}

// Entries reports the number of indexed clusters.
func (b *BaseRun) Entries() int { return len(b.entries) }

// BaseRun indexes rep — a completed report previously produced by this
// verifier — for incremental reuse. The report must be complete (every
// cluster carries an outcome); partial or foreign reports are rejected with
// ErrBaseUnusable rather than silently yielding a base that can never match.
func (v *Verifier) BaseRun(rep *Report) (*BaseRun, error) {
	if err := v.requireMaterialized("BaseRun"); err != nil {
		return nil, err
	}
	if rep == nil || rep.Diagnostics == nil {
		return nil, fmt.Errorf("%w: report has no diagnostics", ErrBaseUnusable)
	}
	clusters := prune.Clusters(v.par, v.pruneOptions())
	if len(rep.Diagnostics.Clusters) != len(clusters) {
		return nil, fmt.Errorf("%w: %d outcomes for %d clusters (incomplete run, or a report from another design)",
			ErrBaseUnusable, len(rep.Diagnostics.Clusters), len(clusters))
	}
	viols := make(map[string]*Violation, len(rep.Violations))
	for i := range rep.Violations {
		viols[rep.Violations[i].Victim] = &rep.Violations[i]
	}
	b := &BaseRun{
		cfgKey:  v.cfg.CanonicalConfigKey(),
		owner:   v,
		entries: make(map[string]*baseEntry, len(clusters)),
	}
	signed := v.signClusters(clusters)
	for i, cl := range clusters {
		out := rep.Diagnostics.Clusters[i]
		victim := v.des.Nets[cl.Victim].Name
		if out.Victim != victim {
			return nil, fmt.Errorf("%w: outcome %d is for %q, cluster victim is %q",
				ErrBaseUnusable, i, out.Victim, victim)
		}
		b.entries[victim] = &baseEntry{sig: signed[i], outcome: out, violation: viols[victim]}
	}
	return b, nil
}

// ReverifyStats summarizes how much of a splice was reused.
type ReverifyStats struct {
	// ClustersReused is the number of clusters whose base result was spliced
	// in unchanged; ClustersRecomputed the number analyzed fresh (changed,
	// new, or unsignable).
	ClustersReused     int
	ClustersRecomputed int
	// StaleVictims lists the base-report victims this splice superseded
	// (recomputed or dropped), sorted — the set AdviseRepair now refuses on
	// the base verifier.
	StaleVictims []string
}

// Reverify is ReverifyContext with a background context.
func (v *Verifier) Reverify(base *BaseRun) (*Report, *ReverifyStats, error) {
	return v.ReverifyContext(context.Background(), base)
}

// ReverifyContext verifies this (edited) design incrementally against base:
// clusters whose structural signature matches the base run reuse its
// recorded result, everything else runs the normal engine ladder, and the
// spliced report is byte-identical to a cold RunContext on the same design
// and config. The base must come from a verifier with an equal canonical
// config (ErrConfigMismatch otherwise) — splicing across configs would mix
// results computed under different policies.
//
// Victims the splice supersedes on the base (recomputed or dropped) are
// marked stale there; subsequent AdviseRepair calls for them on the base
// verifier fail with ErrStaleReport.
func (v *Verifier) ReverifyContext(ctx context.Context, base *BaseRun) (*Report, *ReverifyStats, error) {
	if err := v.requireMaterialized("Reverify"); err != nil {
		return nil, nil, err
	}
	if base == nil {
		return nil, nil, fmt.Errorf("%w: nil base run", ErrBaseUnusable)
	}
	if key := v.cfg.CanonicalConfigKey(); key != base.cfgKey {
		return nil, nil, fmt.Errorf("%w:\n  base:  %s\n  delta: %s", ErrConfigMismatch, base.cfgKey, key)
	}
	stats := &ReverifyStats{}
	seen := make(map[string]bool, len(base.entries))
	// Sign the edited design's clusters up front, in parallel: the engine
	// applies the reuse hook serially, and serial signing would cost more
	// than the recompute it saves. The hook looks signatures up by victim —
	// cluster extraction is deterministic, so this pre-pass sees the same
	// cluster set runEngine will.
	fresh := make(map[string]string)
	clusters := prune.Clusters(v.par, v.pruneOptions())
	for i, sig := range v.signClusters(clusters) {
		fresh[v.des.Nets[clusters[i].Victim].Name] = sig
	}
	// The engine applies the hook serially before the worker pool, so plain
	// map/slice state is safe here.
	reuse := func(cl *prune.Cluster) *clusterResult {
		victim := v.des.Nets[cl.Victim].Name
		seen[victim] = true
		ent := base.entries[victim]
		if ent == nil {
			// A brand-new victim: recomputed, but nothing in the base to
			// supersede.
			stats.ClustersRecomputed++
			return nil
		}
		if ent.outcome.Err != nil {
			// An unverified base outcome is not a pure function of the
			// signature — timeouts, cancellations and injected faults are
			// transient. A cold run of the edited design would attempt the
			// cluster afresh, so the splice must too or the identity
			// contract breaks the moment the transient condition clears.
			stats.ClustersRecomputed++
			stats.StaleVictims = append(stats.StaleVictims, victim)
			return nil
		}
		sig, ok := fresh[victim]
		if !ok {
			sig = v.clusterSignature(cl)
		}
		if sig != ent.sig {
			// A mismatch means we cannot prove the cluster unchanged —
			// recompute, never guess. The base's recorded result for this
			// victim is superseded.
			stats.ClustersRecomputed++
			stats.StaleVictims = append(stats.StaleVictims, victim)
			return nil
		}
		stats.ClustersReused++
		res := &clusterResult{outcome: ent.outcome}
		if ent.violation != nil {
			viol := *ent.violation
			res.violation = &viol
		}
		return res
	}
	rep, err := v.runEngine(ctx, runParams{
		workers: v.cfg.Workers,
		strict:  v.cfg.Strict,
		timeout: v.cfg.ClusterTimeout,
		retries: v.cfg.RungRetries,
		backoff: v.cfg.RungRetryBackoff,
		reuse:   reuse,
	})
	if err != nil {
		return nil, nil, err
	}
	// Base victims that vanished from the edited design's cluster set are
	// superseded too: the edit removed the hazard (or the net).
	for victim := range base.entries {
		if !seen[victim] {
			stats.StaleVictims = append(stats.StaleVictims, victim)
		}
	}
	sort.Strings(stats.StaleVictims)
	base.owner.markStale(stats.StaleVictims)
	return rep, stats, nil
}

// markStale records victims whose results in this verifier's reports were
// superseded by a reverify splice. Concurrency-safe: the daemon may splice
// while another request is advising.
func (v *Verifier) markStale(victims []string) {
	if len(victims) == 0 {
		return
	}
	v.staleMu.Lock()
	defer v.staleMu.Unlock()
	if v.stale == nil {
		v.stale = make(map[string]bool, len(victims))
	}
	for _, name := range victims {
		v.stale[name] = true
	}
}

// victimStale reports whether a reverify splice superseded the victim here.
func (v *Verifier) victimStale(name string) bool {
	v.staleMu.Lock()
	defer v.staleMu.Unlock()
	return v.stale[name]
}
