// dspchip runs the full chip-level verification flow on the synthetic DSP
// design (the paper's Section 5 scenario): extraction, capacitance-ratio
// pruning with static-timing windows, logic correlation, SyMPVL reduction,
// nonlinear driver models, and a violation report of the latch-input nets
// most at risk of capturing a crosstalk glitch.
//
// Run with:
//
//	go run ./examples/dspchip
package main

import (
	"fmt"
	"log"
	"os"

	"xtverify"
)

func main() {
	dspCfg := xtverify.DefaultDSPConfig()
	dspCfg.Channels = 2 // keep the example quick; cmd/xtverify runs full scale

	fmt.Println("generating synthetic DSP design and extracting parasitics...")
	v, err := xtverify.NewVerifierFromDSP(dspCfg, xtverify.Config{
		Model:               xtverify.NonlinearCellModel,
		UseTimingWindows:    true,
		UseLogicCorrelation: true,
		GlitchThresholdFrac: 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := v.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	latch := 0
	for _, viol := range rep.Violations {
		if viol.LatchInput {
			latch++
		}
	}
	fmt.Printf("\n%d of %d violations land on latch inputs — the cases that can flip stored state.\n",
		latch, len(rep.Violations))
}
