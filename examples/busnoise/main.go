// busnoise demonstrates the tri-state bus policy on a hand-built scenario:
// a victim control net runs alongside a shared data bus driven by four
// tri-state buffers of different strengths. Only one bus driver is active
// at a time in real operation, so the analysis assumes the strongest one
// switches — the paper's conservative bus rule — and compares that against
// the (wrong) optimistic choice of the weakest driver.
//
// This example exercises the layered internals directly (design model →
// extractor → pruning → glitch engine); see examples/quickstart for the
// one-call public API.
//
// Run with:
//
//	go run ./examples/busnoise
package main

import (
	"fmt"
	"log"

	"xtverify/internal/cells"
	"xtverify/internal/design"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
)

func mustCell(name string) *cells.Cell {
	c, ok := cells.ByName(name)
	if !ok {
		log.Fatalf("unknown cell %s", name)
	}
	return c
}

func buildScenario() *design.Design {
	d := design.New("busnoise")
	const busLen = 1800.0
	// The shared bus: four tri-state drivers tapped along the wire.
	bus := &design.Net{
		Name: "data_bus",
		Receivers: []design.Pin{{
			Inst: "rx", Cell: mustCell("INV_X2"), Pin: "A", PosX: busLen, PosY: 0,
		}},
		Route: []design.Segment{{Layer: 2, X0: 0, Y0: 0, X1: busLen, Y1: 0, Width: 0.6}},
	}
	for i, tb := range []string{"TBUF_X1", "TBUF_X2", "TBUF_X4", "TBUF_X8"} {
		bus.Drivers = append(bus.Drivers, design.Pin{
			Inst: fmt.Sprintf("tbuf%d", i), Cell: mustCell(tb), Pin: "Z",
			PosX: busLen * float64(i) / 4, PosY: 0,
		})
	}
	d.AddNet(bus)
	// The victim: a weakly driven control net on the adjacent track feeding
	// a latch enable.
	victim := &design.Net{
		Name:    "latch_en",
		Drivers: []design.Pin{{Inst: "vdrv", Cell: mustCell("INV_X1"), Pin: "Z", PosX: 0, PosY: 1.2}},
		Receivers: []design.Pin{{
			Inst: "lat", Cell: mustCell("LATCH_X1"), Pin: "EN", PosX: busLen, PosY: 1.2,
		}},
		Route: []design.Segment{{Layer: 2, X0: 0, Y0: 1.2, X1: busLen, Y1: 1.2, Width: 0.6}},
	}
	d.AddNet(victim)
	return d
}

func main() {
	d := buildScenario()
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		log.Fatal(err)
	}
	st := par.Stats()
	fmt.Printf("extracted %d nodes, %d resistors, %d coupling caps (%.0f%% of capacitance couples)\n\n",
		st.Nodes, st.Resistors, st.Couplings, 100*st.CouplingFrac)

	victim, _ := d.NetByName("latch_en")
	cl := prune.PruneVictim(par, victim.Index, prune.DefaultOptions())
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelNonlinear, TEnd: 5e-9})
	res, err := eng.AnalyzeGlitch(cl, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus rule: strongest of the %d tri-state drivers switches -> %s\n",
		len(d.Nets[0].Drivers), res.Aggressors[0].Cell.Name)
	fmt.Printf("worst-case glitch on latch enable: %.3f V (%.0f%% of Vdd)\n",
		res.PeakV, 100*res.PeakV/glitch.Vdd)

	// Contrast: what an optimistic analysis (weakest driver) would report.
	weak := buildScenario()
	weak.Nets[0].Drivers = weak.Nets[0].Drivers[:1] // keep only TBUF_X1
	parW, err := extract.Extract(weak, extract.Tech025())
	if err != nil {
		log.Fatal(err)
	}
	clW := prune.PruneVictim(parW, 1, prune.DefaultOptions())
	engW := glitch.NewEngine(parW, glitch.Options{Model: glitch.ModelNonlinear, TEnd: 5e-9})
	resW, err := engW.AnalyzeGlitch(clW, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimistic (weakest driver only):      %.3f V (%.0f%% of Vdd)\n",
		resW.PeakV, 100*resW.PeakV/glitch.Vdd)
	fmt.Printf("\nthe conservative rule reports %.1fx the optimistic glitch — the audit never misses the real case.\n",
		res.PeakV/resW.PeakV)
}
