// Quickstart: predict the crosstalk glitch between parallel wires.
//
// Three 1500 µm wires run at minimum pitch in the bundled 0.25 µm
// technology. The outer two switch low→high simultaneously while the middle
// wire is held low by a weak inverter — the classic worst-case victim setup
// of the paper's Figure 1. The library extracts the coupled RC network,
// reduces it with SyMPVL, attaches pre-characterized nonlinear driver
// models, and reports the glitch and delay impact.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xtverify"
)

func main() {
	res, err := xtverify.AnalyzeCoupledWires(xtverify.WireAnalysis{
		Wires:        3,
		LengthUM:     1500,
		DriverCell:   "INV_X2", // aggressor and victim drivers
		ReceiverCell: "INV_X1",
		Model:        xtverify.NonlinearCellModel,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled run: 3 wires x 1500 um at minimum pitch (Vdd = %.1f V)\n\n", xtverify.Vdd)
	fmt.Printf("peak glitch on quiet victim: %.3f V (%.0f%% of Vdd)\n",
		res.GlitchV, 100*res.GlitchFracVdd)
	if res.GlitchFracVdd > 0.10 {
		fmt.Println("  -> above the 10% reporting floor: a receiver could momentarily see a wrong logic level")
	}
	fmt.Printf("\nvictim delay, rising edge:\n")
	fmt.Printf("  without coupling: %.1f ps\n", res.RiseDelayDecoupled*1e12)
	fmt.Printf("  aggressors switching opposite: %.1f ps (%.0f%% slower)\n",
		res.RiseDelayCoupled*1e12,
		100*(res.RiseDelayCoupled-res.RiseDelayDecoupled)/res.RiseDelayDecoupled)
	fmt.Printf("victim delay, falling edge:\n")
	fmt.Printf("  without coupling: %.1f ps\n", res.FallDelayDecoupled*1e12)
	fmt.Printf("  aggressors switching opposite: %.1f ps\n", res.FallDelayCoupled*1e12)
}
