// repairflow demonstrates the signal-integrity ECO loop: verify a design,
// take its worst violating victim, let the repair advisor re-simulate the
// standard fix menu (driver upsizing, respacing, shield insertion), and dump
// the offending waveform as a VCD file for a waveform viewer.
//
// This example drives the layered internals directly; see
// examples/quickstart for the one-call public API.
//
// Run with:
//
//	go run ./examples/repairflow
package main

import (
	"fmt"
	"log"
	"os"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/waveform"
)

func main() {
	cfg := dsp.Config{Seed: 1999, Channels: 1, TracksPerChannel: 60,
		ChannelLengthUM: 1500, BusFraction: 0.05, LatchFraction: 0.3, ClockSpines: 1}
	d, err := dsp.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		log.Fatal(err)
	}
	clusters := prune.Clusters(par, prune.DefaultOptions())
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelNonlinear, TEnd: 4e-9})

	// Find the worst rising-glitch victim.
	var worst *glitch.Result
	var worstCluster *prune.Cluster
	for _, cl := range clusters {
		res, err := eng.AnalyzeGlitch(cl, true)
		if err != nil {
			log.Fatal(err)
		}
		if worst == nil || res.PeakV > worst.PeakV {
			worst, worstCluster = res, cl
		}
	}
	if worst == nil {
		log.Fatal("no coupled victims found")
	}
	fmt.Printf("worst victim: %s — %.3f V glitch (%.0f%% of Vdd) from %d aggressors\n\n",
		worst.VictimName, worst.PeakV, 100*worst.PeakV/glitch.Vdd, worst.ActiveAggressors)

	// Evaluate the ECO menu against a 10%-of-Vdd target.
	threshold := 0.10 * glitch.Vdd
	advice, err := eng.AdviseRepairs(worstCluster, true, threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair options (target: < %.2f V):\n", threshold)
	for _, o := range advice.Options {
		status := "misses target"
		if !o.Feasible {
			status = "not applicable"
		} else if o.Clears {
			status = "CLEARS"
		}
		fmt.Printf("  %-16s %-16s -> %.3f V   [%s]\n", o.Fix, o.Detail, o.PeakV, status)
	}
	if rec := advice.Recommended(); rec != nil {
		fmt.Printf("\nrecommended fix: %s (%s)\n", rec.Fix, rec.Detail)
	} else {
		fmt.Println("\nno single fix clears the target; combine fixes or re-route")
	}

	// Dump the violating waveform for a viewer.
	f, err := os.Create("glitch.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := waveform.WriteVCD(f, map[string]*waveform.Waveform{
		worst.VictimName: worst.ReceiverWave,
	}, 1e-4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote the victim waveform to glitch.vcd")
}
