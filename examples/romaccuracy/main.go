// romaccuracy overlays the SyMPVL reduced-order model against the full
// SPICE-level solution of the same coupled cluster — the comparison behind
// the paper's Figures 4 and 5. Both engines carry identical linear 1 kΩ
// drivers, so any difference is pure model-order-reduction error; the plot
// shows the two waveforms are indistinguishable while the reduced model is
// an order of magnitude cheaper.
//
// This example exercises the layered internals directly; see
// examples/quickstart for the one-call public API.
//
// Run with:
//
//	go run ./examples/romaccuracy
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"xtverify/internal/dsp"
	"xtverify/internal/extract"
	"xtverify/internal/glitch"
	"xtverify/internal/prune"
	"xtverify/internal/waveform"
)

func main() {
	// Five coupled 2 mm wires: a mid-size cluster.
	d, err := dsp.ParallelWires(5, 2000, 1.2, []string{"INV_X4"}, "INV_X1")
	if err != nil {
		log.Fatal(err)
	}
	par, err := extract.Extract(d, extract.Tech025())
	if err != nil {
		log.Fatal(err)
	}
	cl := prune.PruneVictim(par, 2, prune.Options{CapRatioThreshold: 0.001, MinCouplingF: 1e-18})
	eng := glitch.NewEngine(par, glitch.Options{Model: glitch.ModelFixedR, FixedOhms: 1000, TEnd: 5e-9})

	t0 := time.Now()
	rom, err := eng.AnalyzeGlitch(cl, true)
	if err != nil {
		log.Fatal(err)
	}
	romTime := time.Since(t0)

	t0 = time.Now()
	ref, err := eng.SPICEGlitch(cl, true, false)
	if err != nil {
		log.Fatal(err)
	}
	spiceTime := time.Since(t0)

	fmt.Printf("cluster: %d nodes unreduced -> %d reduced states\n", rom.ClusterNodes, rom.ReducedOrder)
	fmt.Printf("peak glitch: MPVL %.4f V, SPICE %.4f V (error %.3f%%)\n",
		rom.PeakV, ref.PeakV, 100*math.Abs(rom.PeakV-ref.PeakV)/ref.PeakV)
	fmt.Printf("runtime: MPVL %v, SPICE %v (%.1fx)\n\n",
		romTime.Round(time.Millisecond), spiceTime.Round(time.Millisecond),
		spiceTime.Seconds()/romTime.Seconds())

	fmt.Println("victim receiver waveform, MPVL (*) vs SPICE (+):")
	fmt.Print(waveform.ASCIIPlot(72, 14, rom.ReceiverWave, ref.ReceiverWave))

	// Zoom on the peak, Figure 5 style.
	span := 0.5e-9
	zoomR, zoomS := zoom(rom.ReceiverWave, ref.PeakTime, span), zoom(ref.ReceiverWave, ref.PeakTime, span)
	fmt.Println("\nmagnified peak:")
	fmt.Print(waveform.ASCIIPlot(72, 14, zoomR, zoomS))
}

func zoom(w *waveform.Waveform, center, span float64) *waveform.Waveform {
	out := waveform.New(128)
	for i := 0; i < 128; i++ {
		t := center - span/2 + span*float64(i)/127
		if t < 0 {
			continue
		}
		out.Append(t, w.At(t))
	}
	return out
}
