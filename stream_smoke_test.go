package xtverify

import (
	"bufio"
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// peakRSSMB returns the process peak resident set size (VmHWM) in MB, or -1
// when /proc is unavailable (non-Linux).
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return -1
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "VmHWM:" {
			kb, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return -1
			}
			return kb / 1024
		}
	}
	return -1
}

// TestStreamSmokeLarge is the CI streaming smoke: a ~1M-net synthetic chip
// (2500 channels of the bench design's short-span tracks) verified through
// streaming ingest. It is skipped unless XTVERIFY_STREAM_SMOKE is set —
// "stream" (or "1") runs the streamed path, "materialized" runs the same
// design materialized, so the two modes' peak-RSS numbers can be compared.
// When XTVERIFY_STREAM_SMOKE_MAX_RSS_MB is also set, the test fails if the
// process peak RSS (VmHWM) exceeds that budget — CI runs the streamed mode
// with a budget ≥4× below the materialized peak, under a matching GOMEMLIMIT
// so the runtime is not even allowed to drift that high.
func TestStreamSmokeLarge(t *testing.T) {
	mode := os.Getenv("XTVERIFY_STREAM_SMOKE")
	if mode == "" {
		t.Skip("set XTVERIFY_STREAM_SMOKE=stream (or materialized) to run the ~1M-net smoke")
	}
	cfg := DSPConfig{Seed: 1999, Channels: 2500, TracksPerChannel: 400,
		ChannelLengthUM: 70, BusFraction: 0.05, LatchFraction: 0.25,
		ClockSpines: 1, TrackPitchUM: 1.8}
	ecfg := Config{Model: FixedResistance, Collector: NewMetricsCollector()}
	if mode != "materialized" {
		ecfg.StreamIngest = true
	}
	v, err := NewVerifierFromDSP(cfg, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if rep.NetCount < 1_000_000 {
		t.Fatalf("smoke design has %d nets, want >= 1M", rep.NetCount)
	}
	if rep.Diagnostics.Unverified != 0 {
		t.Fatalf("%d clusters unverified", rep.Diagnostics.Unverified)
	}
	s := rep.Diagnostics.Metrics
	if ecfg.StreamIngest {
		if got := s.Counters["nets_streamed"]; got != int64(rep.NetCount) {
			t.Errorf("nets_streamed = %d, want %d", got, rep.NetCount)
		}
		// The frontier must stay a sliver of the chip — this is the
		// bounded-memory invariant in counter form.
		if peak := s.Counters["frontier_peak_nets"]; peak <= 0 || peak > int64(rep.NetCount/10) {
			t.Errorf("frontier_peak_nets = %d on a %d-net chip; frontier is not bounded", peak, rep.NetCount)
		}
	}
	rss := peakRSSMB()
	t.Logf("mode=%s nets=%d clusters=%d violations=%d frontier_peak=%d wall=%v nets/sec=%.0f peak-rss-MB=%.1f",
		mode, rep.NetCount, rep.AnalyzedVictims, len(rep.Violations),
		s.Counters["frontier_peak_nets"], wall, float64(rep.NetCount)/wall.Seconds(), rss)
	if budget := os.Getenv("XTVERIFY_STREAM_SMOKE_MAX_RSS_MB"); budget != "" {
		maxMB, err := strconv.ParseFloat(budget, 64)
		if err != nil {
			t.Fatalf("bad XTVERIFY_STREAM_SMOKE_MAX_RSS_MB %q: %v", budget, err)
		}
		if rss < 0 {
			t.Skip("peak RSS unavailable on this platform; budget not enforced")
		}
		if rss > maxMB {
			t.Errorf("peak RSS %.1f MB exceeds the %.0f MB budget; streaming ingest is no longer bounded", rss, maxMB)
		}
	}
}
