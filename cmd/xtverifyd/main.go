// Command xtverifyd is the long-running crosstalk verification daemon: it
// serves POST /v1/verify jobs over HTTP/JSON with bounded admission
// control (429 + Retry-After under overload), per-job deadlines,
// client-disconnect cancellation, live /metrics and /healthz, and a
// disk-persistent ROM cache that survives restarts.
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503, new jobs
// are refused, in-flight jobs run to completion (bounded by
// -drain-timeout), then the process exits.
//
// Usage:
//
//	xtverifyd -addr :8723 -cache-dir /var/cache/xtverify
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xtverify"
	"xtverify/internal/daemon"
)

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		cacheDir  = flag.String("cache-dir", "", "directory for the persistent ROM cache (empty = in-memory only)")
		cacheCap  = flag.Int("rom-cache-cap", 0, "in-memory ROM cache capacity in entries (0 = default)")
		maxConc   = flag.Int("max-concurrent", 2, "jobs running at once")
		maxQueue  = flag.Int("max-queue", 8, "jobs allowed to wait for a slot before shedding with 429")
		jobTO     = flag.Duration("job-timeout", 2*time.Minute, "default per-job deadline")
		maxJobTO  = flag.Duration("max-job-timeout", 10*time.Minute, "upper clamp on requested per-job deadlines")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs on shutdown")
		workers   = flag.Int("workers", 0, "per-job parallel cluster workers (0 = GOMAXPROCS)")
		retries   = flag.Int("rung-retries", 2, "retries per fallback rung for transiently timed-out clusters")
		backoff   = flag.Duration("rung-retry-backoff", xtverify.DefaultRungRetryBackoff, "base backoff between rung retries")
		clusterTO = flag.Duration("cluster-timeout", 0, "per-cluster (per-attempt when retrying) analysis deadline (0 = none)")
		thresh    = flag.Float64("threshold", 0.10, "default glitch threshold as a fraction of Vdd")
		capRatio  = flag.Float64("capratio", 0.02, "default pruning capacitance-ratio threshold")
		noScreen  = flag.Bool("no-screen", false, "disable the rung-0 analytic screen for all jobs (requests may also set no_screen per job)")
		screenSF  = flag.Float64("screen-safety", 0, "default rung-0 screening safety factor (0 = engine default)")
	)
	flag.Parse()

	opts := daemon.Options{
		Engine: xtverify.Config{
			Model:               xtverify.NonlinearCellModel,
			GlitchThresholdFrac: *thresh,
			CapRatioThreshold:   *capRatio,
			Workers:             *workers,
			ClusterTimeout:      *clusterTO,
			RungRetries:         *retries,
			RungRetryBackoff:    *backoff,
			DisableScreening:    *noScreen,
			ScreenSafetyFactor:  *screenSF,
		},
		MaxConcurrent:     *maxConc,
		MaxQueue:          *maxQueue,
		DefaultJobTimeout: *jobTO,
		MaxJobTimeout:     *maxJobTO,
		ROMCacheCap:       *cacheCap,
		Logf:              log.Printf,
	}
	if *cacheDir != "" {
		store, err := xtverify.OpenROMStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Store = store
		log.Printf("xtverifyd: persistent ROM cache at %s", *cacheDir)
	}
	srv := daemon.New(opts)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("xtverifyd: listening on %s (max %d running, %d queued)", *addr, *maxConc, *maxQueue)

	select {
	case err := <-errc:
		// Listener died before any signal: nothing to drain.
		log.Fatalf("xtverifyd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("xtverifyd: shutdown signal received, draining for up to %v", *drainTO)
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Shutdown stops the listener and waits for in-flight requests — which
	// are exactly the in-flight jobs, since jobs are synchronous.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("xtverifyd: shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Printf("xtverifyd: %v (abandoning in-flight jobs)", err)
		os.Exit(1)
	}
	log.Printf("xtverifyd: drained cleanly")
}
