// Command xtverify runs full-chip crosstalk verification on the synthetic
// DSP design and prints the violation report. It demonstrates the complete
// flow of the library: generation → extraction → (optional STA) → pruning →
// SyMPVL reduction → nonlinear transient → report.
//
// Usage:
//
//	xtverify [flags]
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof endpoint
	"os"
	"os/signal"
	"time"

	"xtverify"
)

func main() { os.Exit(run()) }

// run is main with an exit code instead of os.Exit, so deferred cleanup
// (the pprof server's graceful shutdown in particular) actually runs.
func run() int {
	var (
		model    = flag.String("model", "nonlinear", "driver model: fixed | library | nonlinear")
		fixedR   = flag.Float64("r", 1000, "drive resistance for -model=fixed (ohms)")
		thresh   = flag.Float64("threshold", 0.10, "report glitches above this fraction of Vdd")
		capRatio = flag.Float64("capratio", 0.02, "pruning capacitance-ratio threshold")
		windows  = flag.Bool("windows", false, "use static-timing windows to exclude aggressors")
		logic    = flag.Bool("logic", false, "use complementary-pair logic correlation")
		channels = flag.Int("channels", 2, "synthetic DSP channels")
		tracks   = flag.Int("tracks", 105, "tracks per channel")
		seed     = flag.Int64("seed", 1999, "generator seed")
		spefOut  = flag.String("spef", "", "also write extracted parasitics to this SPEF file")
		vlogOut  = flag.String("verilog", "", "also write the gate-level netlist to this Verilog file")
		defOut   = flag.String("def", "", "also write the physical design to this DEF file")
		defIn    = flag.String("indef", "", "load the design from this DEF file instead of generating one")
		emFlag   = flag.Bool("em", false, "also run the electromigration current audit")
		timFlag  = flag.Bool("timing", false, "also run the coupled-delay timing impact report")
		workers  = flag.Int("workers", 0, "parallel cluster workers (0 = GOMAXPROCS)")
		strict   = flag.Bool("strict", false, "fail fast on the first cluster error instead of degrading")
		noPrep   = flag.Bool("no-prepared", false, "disable the prepared/batched transient layer (A/B timing; results are identical either way)")
		noScreen = flag.Bool("no-screen", false, "disable the rung-0 analytic screen (A/B timing; screened clusters are conservative passes)")
		screenSF = flag.Float64("screen-safety", 0, "rung-0 screening safety factor (0 = default)")
		cluTO    = flag.Duration("cluster-timeout", 0, "per-cluster analysis deadline (0 = none; per-attempt when -rung-retries > 0)")
		retries  = flag.Int("rung-retries", 0, "retries per fallback rung for transiently timed-out clusters")
		romCap   = flag.Int("rom-cache-cap", 0, "in-memory ROM cache capacity in entries (0 = default)")
		romDir   = flag.String("rom-store", "", "directory for the disk-persistent ROM cache (empty = in-memory only)")
		stream   = flag.Bool("stream", false, "stream the design through bounded-memory ingest: clusters are verified while the input is still being read (identical report; incompatible with -windows and the materialized-only outputs)")
		streamSl = flag.Float64("stream-slack", 0, "frontier slack in µm for -stream (0 = default)")
		metrics  = flag.String("metrics-out", "", "write the run's metrics snapshot to this JSON file")
		pprofOn  = flag.String("pprof", "", "serve expvar/pprof on this address (e.g. :6060); metrics appear live at /debug/vars under \"xtverify\"")
	)
	flag.Parse()

	cfg := xtverify.Config{
		FixedOhms:             *fixedR,
		CapRatioThreshold:     *capRatio,
		GlitchThresholdFrac:   *thresh,
		UseTimingWindows:      *windows,
		UseLogicCorrelation:   *logic,
		Workers:               *workers,
		Strict:                *strict,
		ClusterTimeout:        *cluTO,
		RungRetries:           *retries,
		ROMCacheCap:           *romCap,
		StreamIngest:          *stream,
		StreamFrontierSlackUM: *streamSl,

		DisablePreparedTransients: *noPrep,
		DisableScreening:          *noScreen,
		ScreenSafetyFactor:        *screenSF,
	}
	if *stream {
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{*windows, "-windows"}, {*spefOut != "", "-spef"},
			{*vlogOut != "", "-verilog"}, {*defOut != "", "-def"},
			{*emFlag, "-em"}, {*timFlag, "-timing"},
		} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "%s needs the materialized design and cannot be combined with -stream\n", bad.name)
				return 2
			}
		}
	}
	switch *model {
	case "fixed":
		cfg.Model = xtverify.FixedResistance
	case "library":
		cfg.Model = xtverify.TimingLibrary
	case "nonlinear":
		cfg.Model = xtverify.NonlinearCellModel
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		return 2
	}
	if *romDir != "" {
		store, err := xtverify.OpenROMStore(*romDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.ROMStore = store
	}
	var collector *xtverify.MetricsCollector
	if *metrics != "" || *pprofOn != "" {
		collector = xtverify.NewMetricsCollector()
		cfg.Collector = collector
	}
	if *pprofOn != "" {
		// Live snapshots under /debug/vars, profiles under /debug/pprof —
		// on a real server we can stop, not a fire-and-forget goroutine.
		expvar.Publish("xtverify", expvar.Func(func() any { return collector.Snapshot() }))
		pprofSrv := &http.Server{Addr: *pprofOn, Handler: http.DefaultServeMux}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "pprof endpoint: %v\n", err)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = pprofSrv.Shutdown(sctx)
		}()
	}
	dspCfg := xtverify.DefaultDSPConfig()
	dspCfg.Seed = *seed
	dspCfg.Channels = *channels
	dspCfg.TracksPerChannel = *tracks

	var (
		v   *xtverify.Verifier
		err error
	)
	if *defIn != "" {
		f, err2 := os.Open(*defIn)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			return 1
		}
		// Under -stream the reader is consumed during RunContext, so the
		// file must stay open until the run finishes.
		defer f.Close()
		v, err = xtverify.NewVerifierFromDEF(f, cfg)
	} else {
		v, err = xtverify.NewVerifierFromDSP(dspCfg, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	writeVia := func(path string, fn func(io.Writer) error, what string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s to %s\n", what, path)
		return nil
	}
	if err := writeVia(*vlogOut, v.WriteVerilog, "netlist"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVia(*defOut, v.WriteDEF, "physical design"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeVia(*spefOut, v.WriteSPEF, "parasitics"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Interrupt (Ctrl-C) cancels the run promptly instead of killing a
	// half-finished analysis.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := v.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := rep.Diagnostics.Metrics.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote metrics to %s\n", *metrics)
	}
	if *timFlag {
		impacts, err := v.RunTimingImpact(true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println("\nworst coupling-induced delay changes:")
		if err := xtverify.WriteTimingText(os.Stdout, impacts, 10); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if *emFlag {
		rs, err := v.RunEM(xtverify.EMOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(rs) > 10 {
			rs = rs[:10]
		}
		fmt.Println("\nworst electromigration utilizations:")
		if err := xtverify.WriteEMText(os.Stdout, rs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if len(rep.Violations) > 0 {
		return 3 // nonzero exit signals signal-integrity violations
	}
	return 0
}
