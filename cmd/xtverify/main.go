// Command xtverify runs full-chip crosstalk verification on the synthetic
// DSP design and prints the violation report. It demonstrates the complete
// flow of the library: generation → extraction → (optional STA) → pruning →
// SyMPVL reduction → nonlinear transient → report.
//
// Usage:
//
//	xtverify [flags]
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof endpoint
	"os"
	"os/signal"

	"xtverify"
)

func main() {
	var (
		model    = flag.String("model", "nonlinear", "driver model: fixed | library | nonlinear")
		fixedR   = flag.Float64("r", 1000, "drive resistance for -model=fixed (ohms)")
		thresh   = flag.Float64("threshold", 0.10, "report glitches above this fraction of Vdd")
		capRatio = flag.Float64("capratio", 0.02, "pruning capacitance-ratio threshold")
		windows  = flag.Bool("windows", false, "use static-timing windows to exclude aggressors")
		logic    = flag.Bool("logic", false, "use complementary-pair logic correlation")
		channels = flag.Int("channels", 2, "synthetic DSP channels")
		tracks   = flag.Int("tracks", 105, "tracks per channel")
		seed     = flag.Int64("seed", 1999, "generator seed")
		spefOut  = flag.String("spef", "", "also write extracted parasitics to this SPEF file")
		vlogOut  = flag.String("verilog", "", "also write the gate-level netlist to this Verilog file")
		defOut   = flag.String("def", "", "also write the physical design to this DEF file")
		defIn    = flag.String("indef", "", "load the design from this DEF file instead of generating one")
		emFlag   = flag.Bool("em", false, "also run the electromigration current audit")
		timFlag  = flag.Bool("timing", false, "also run the coupled-delay timing impact report")
		workers  = flag.Int("workers", 0, "parallel cluster workers (0 = GOMAXPROCS)")
		strict   = flag.Bool("strict", false, "fail fast on the first cluster error instead of degrading")
		noPrep   = flag.Bool("no-prepared", false, "disable the prepared/batched transient layer (A/B timing; results are identical either way)")
		cluTO    = flag.Duration("cluster-timeout", 0, "per-cluster analysis deadline (0 = none)")
		metrics  = flag.String("metrics-out", "", "write the run's metrics snapshot to this JSON file")
		pprofOn  = flag.String("pprof", "", "serve expvar/pprof on this address (e.g. :6060); metrics appear live at /debug/vars under \"xtverify\"")
	)
	flag.Parse()

	cfg := xtverify.Config{
		FixedOhms:           *fixedR,
		CapRatioThreshold:   *capRatio,
		GlitchThresholdFrac: *thresh,
		UseTimingWindows:    *windows,
		UseLogicCorrelation: *logic,
		Workers:             *workers,
		Strict:              *strict,
		ClusterTimeout:      *cluTO,

		DisablePreparedTransients: *noPrep,
	}
	switch *model {
	case "fixed":
		cfg.Model = xtverify.FixedResistance
	case "library":
		cfg.Model = xtverify.TimingLibrary
	case "nonlinear":
		cfg.Model = xtverify.NonlinearCellModel
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	var collector *xtverify.MetricsCollector
	if *metrics != "" || *pprofOn != "" {
		collector = xtverify.NewMetricsCollector()
		cfg.Collector = collector
	}
	if *pprofOn != "" {
		// Live snapshots under /debug/vars, profiles under /debug/pprof.
		expvar.Publish("xtverify", expvar.Func(func() any { return collector.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof endpoint: %v\n", err)
			}
		}()
	}
	dspCfg := xtverify.DefaultDSPConfig()
	dspCfg.Seed = *seed
	dspCfg.Channels = *channels
	dspCfg.TracksPerChannel = *tracks

	var (
		v   *xtverify.Verifier
		err error
	)
	if *defIn != "" {
		f, err2 := os.Open(*defIn)
		if err2 != nil {
			fmt.Fprintln(os.Stderr, err2)
			os.Exit(1)
		}
		v, err = xtverify.NewVerifierFromDEF(f, cfg)
		f.Close()
	} else {
		v, err = xtverify.NewVerifierFromDSP(dspCfg, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	writeVia := func(path string, fn func(io.Writer) error, what string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s to %s\n", what, path)
	}
	writeVia(*vlogOut, v.WriteVerilog, "netlist")
	writeVia(*defOut, v.WriteDEF, "physical design")
	if *spefOut != "" {
		f, err := os.Create(*spefOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := v.WriteSPEF(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote parasitics to %s\n", *spefOut)
	}
	// Interrupt (Ctrl-C) cancels the run promptly instead of killing a
	// half-finished analysis.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := v.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rep.Diagnostics.Metrics.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics to %s\n", *metrics)
	}
	if *timFlag {
		impacts, err := v.RunTimingImpact(true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("\nworst coupling-induced delay changes:")
		if err := xtverify.WriteTimingText(os.Stdout, impacts, 10); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *emFlag {
		rs, err := v.RunEM(xtverify.EMOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(rs) > 10 {
			rs = rs[:10]
		}
		fmt.Println("\nworst electromigration utilizations:")
		if err := xtverify.WriteEMText(os.Stdout, rs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if len(rep.Violations) > 0 {
		os.Exit(3) // nonzero exit signals signal-integrity violations
	}
}
