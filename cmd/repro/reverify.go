// The reverify-sweep experiment: quantify the incremental ECO splice against
// the full re-run it replaces. One base verification of the synthetic design,
// then a sweep of single-driver upsize repairs — each applied to the DEF view
// and re-verified both ways. The identity contract (spliced report ==
// byte-identical cold run) is asserted on every repair, so the sweep doubles
// as an end-to-end check of the reverify layer at CLI scale.
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xtverify"
	"xtverify/internal/cells"
	"xtverify/internal/deflite"
)

// upsizeDriver rewrites defText with victim's first driver swapped to the
// next stronger same-kind cell (the daemon's upsize-driver delta).
func upsizeDriver(defText, victim string) (string, error) {
	d, err := deflite.Read(strings.NewReader(defText))
	if err != nil {
		return "", err
	}
	net, ok := d.NetByName(victim)
	if !ok || len(net.Drivers) == 0 {
		return "", fmt.Errorf("victim %q missing or driverless", victim)
	}
	drv := net.Drivers[0]
	var repl *cells.Cell
	for _, cand := range cells.Library() {
		if cand.Kind != drv.Cell.Kind || cand.Strength <= drv.Cell.Strength {
			continue
		}
		if repl == nil || cand.Strength < repl.Strength {
			repl = cand
		}
	}
	if repl == nil {
		return "", fmt.Errorf("no cell stronger than %s", drv.Cell.Name)
	}
	for _, n := range d.Nets {
		for i := range n.Drivers {
			if n.Drivers[i].Inst == drv.Inst {
				n.Drivers[i].Cell = repl
			}
		}
		for i := range n.Receivers {
			if n.Receivers[i].Inst == drv.Inst {
				n.Receivers[i].Cell = repl
			}
		}
	}
	var sb strings.Builder
	if err := deflite.Write(&sb, d); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// renderIdentity is the report's identity surface (WriteText, no diagnostics).
func renderIdentity(rep *xtverify.Report) (string, error) {
	diag := rep.Diagnostics
	rep.Diagnostics = nil
	var sb strings.Builder
	err := rep.WriteText(&sb)
	rep.Diagnostics = diag
	return sb.String(), err
}

func runReverifySweep() (string, error) {
	ctx := context.Background()
	cfg := xtverify.Config{Model: xtverify.TimingLibrary, Workers: *workers}

	// Canonicalize through DEF, like the daemon: the sweep's deltas are DEF
	// edits, and only DEF-parsed designs are bit-comparable with them.
	gen, err := xtverify.NewVerifierFromDSP(xtverify.DSPConfig(dspCfg()), cfg)
	if err != nil {
		return "", err
	}
	var defBuf strings.Builder
	if err := gen.WriteDEF(&defBuf); err != nil {
		return "", err
	}
	baseDEF := defBuf.String()
	baseV, err := xtverify.NewVerifierFromDEF(strings.NewReader(baseDEF), cfg)
	if err != nil {
		return "", err
	}

	t0 := time.Now()
	baseRep, err := baseV.RunContext(ctx)
	if err != nil {
		return "", err
	}
	baseMS := float64(time.Since(t0)) / float64(time.Millisecond)
	base, err := baseV.BaseRun(baseRep)
	if err != nil {
		return "", err
	}

	// Repair candidates: violated victims first, then the remaining analyzed
	// clusters, capped by -scale.
	var candidates []string
	seen := map[string]bool{}
	for _, viol := range baseRep.Violations {
		candidates, seen[viol.Victim] = append(candidates, viol.Victim), true
	}
	for _, out := range baseRep.Diagnostics.Clusters {
		if !seen[out.Victim] {
			candidates = append(candidates, out.Victim)
		}
	}
	limit := scaled(8)
	var b strings.Builder
	fmt.Fprintf(&b, "reverify sweep: %d clusters, base full run %.0f ms, up to %d single-driver repairs\n",
		base.Entries(), baseMS, limit)
	fmt.Fprintf(&b, "%-24s %10s %10s %8s %8s %9s\n", "victim", "full ms", "splice ms", "reused", "recomp", "speedup")

	var fullSum, spliceSum float64
	repairs := 0
	for _, victim := range candidates {
		if repairs >= limit {
			break
		}
		edited, err := upsizeDriver(baseDEF, victim)
		if err != nil {
			continue // no stronger cell in the library: not repairable this way
		}

		t0 = time.Now()
		coldV, err := xtverify.NewVerifierFromDEF(strings.NewReader(edited), cfg)
		if err != nil {
			return "", err
		}
		coldRep, err := coldV.RunContext(ctx)
		if err != nil {
			return "", err
		}
		fullMS := float64(time.Since(t0)) / float64(time.Millisecond)

		t0 = time.Now()
		v, err := xtverify.NewVerifierFromDEF(strings.NewReader(edited), cfg)
		if err != nil {
			return "", err
		}
		rep, stats, err := v.ReverifyContext(ctx, base)
		if err != nil {
			return "", err
		}
		spliceMS := float64(time.Since(t0)) / float64(time.Millisecond)

		want, err := renderIdentity(coldRep)
		if err != nil {
			return "", err
		}
		got, err := renderIdentity(rep)
		if err != nil {
			return "", err
		}
		if got != want {
			return "", fmt.Errorf("identity violated: spliced report for %s differs from cold run", victim)
		}

		fmt.Fprintf(&b, "%-24s %10.0f %10.1f %8d %8d %8.1fx\n",
			victim, fullMS, spliceMS, stats.ClustersReused, stats.ClustersRecomputed, fullMS/spliceMS)
		fullSum += fullMS
		spliceSum += spliceMS
		repairs++
	}
	if repairs == 0 {
		return "", fmt.Errorf("no repairable victims in the design")
	}
	fmt.Fprintf(&b, "mean over %d repairs: full %.1f ms, splice %.1f ms, speedup %.1fx (all spliced reports byte-identical to cold runs)\n",
		repairs, fullSum/float64(repairs), spliceSum/float64(repairs), fullSum/spliceSum)
	return b.String(), nil
}
