// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro [flags] <experiment>...
//
// where experiment is one of: table1 table2 table3 table4 fig3 fig4 fig5
// fig6 fig7 prune all. Scaled-down runs (for quick checks) use -scale.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof endpoint
	"os"
	"strings"
	"time"

	"xtverify"
	"xtverify/internal/dsp"
	"xtverify/internal/exp"
	"xtverify/internal/glitch"
)

var (
	scale    = flag.Float64("scale", 1.0, "population scale factor (0 < scale <= 1); smaller runs fewer cases")
	seed     = flag.Int64("seed", 1999, "synthetic DSP seed")
	workers  = flag.Int("workers", 0, "parallel cluster workers for the verify experiment (0 = GOMAXPROCS)")
	strict   = flag.Bool("strict", false, "fail fast in the verify experiment instead of degrading")
	noPrep   = flag.Bool("no-prepared", false, "disable the prepared/batched transient layer in the verify experiment (A/B timing; results are identical either way)")
	noScreen = flag.Bool("no-screen", false, "disable the rung-0 analytic screen in the verify experiment (A/B; screened clusters are conservative passes)")
	romCap   = flag.Int("rom-cache-cap", 0, "in-memory ROM cache capacity in entries for the verify experiment (0 = default)")
	metrics  = flag.String("metrics-out", "", "write the verify experiment's metrics snapshot to this JSON file")
	pprofOn  = flag.String("pprof", "", "serve expvar/pprof on this address (e.g. :6060); verify metrics appear live at /debug/vars under \"xtverify\"")

	// collector instruments the verify experiment when -metrics-out or
	// -pprof is given.
	collector *xtverify.MetricsCollector
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 table3 table4 fig3 fig4 fig5 fig6 fig7 prune analytic screen-sweep reverify-sweep timing em prop verify all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *metrics != "" || *pprofOn != "" {
		collector = xtverify.NewMetricsCollector()
	}
	if *pprofOn != "" {
		expvar.Publish("xtverify", expvar.Func(func() any { return collector.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof endpoint: %v\n", err)
			}
		}()
	}
	for _, a := range args {
		if a == "all" {
			args = []string{"table1", "table2", "table3", "table4", "prune", "analytic", "fig3", "fig4", "fig6", "fig7"}
			break
		}
	}
	for _, a := range args {
		t0 := time.Now()
		out, err := run(a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro %s: %v\n", a, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", a, time.Since(t0).Seconds())
	}
}

func scaled(n int) int {
	m := int(float64(n) * *scale)
	if m < 1 {
		m = 1
	}
	return m
}

func dspCfg() dsp.Config {
	cfg := dsp.DefaultConfig()
	cfg.Seed = *seed
	if *scale < 1 {
		cfg.Channels = scaled(cfg.Channels)
	}
	return cfg
}

func accuracyCfg() exp.AccuracyConfig {
	cfg := exp.AccuracyConfig{}
	if *scale < 1 {
		cfg.LengthsPerCell = scaled(8)
	}
	return cfg
}

func allCellNames() []string {
	names := make([]string, 0, 53)
	for _, c := range cellLibrary() {
		names = append(names, c)
	}
	if *scale < 1 {
		names = names[:scaled(len(names))]
	}
	return names
}

func run(name string) (string, error) {
	switch name {
	case "table1":
		r, err := exp.RunTable1()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "table2":
		r, err := exp.RunTable2()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "table3":
		r, err := exp.RunModelAccuracy(glitch.ModelTimingLibrary, accuracyCfg(), allCellNames())
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "table4":
		r, err := exp.RunModelAccuracy(glitch.ModelNonlinear, accuracyCfg(), allCellNames())
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig3":
		r, err := exp.RunFig3(exp.Fig3Config{MaxClusters: scaled(113), DSP: dspCfg()})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig4", "fig5":
		r, err := exp.RunFig45(exp.Fig3Config{MaxClusters: scaled(25), DSP: dspCfg()})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig6":
		r, err := exp.RunFig67(true, exp.Fig67Config{MaxVictims: scaled(101), DSP: dspCfg()})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "fig7":
		r, err := exp.RunFig67(false, exp.Fig67Config{MaxVictims: scaled(101), DSP: dspCfg()})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "analytic":
		r, err := exp.RunAnalytic()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "reverify-sweep":
		return runReverifySweep()
	case "screen-sweep":
		r, err := exp.RunScreenSweep(1.2, 0.10, xtverify.DefaultScreenSafetyFactor)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "timing":
		r, err := exp.RunTimingImpact(dspCfg(), scaled(200))
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "em":
		r, err := exp.RunEMStudy(dspCfg(), 200e6, 0)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "prop":
		r, err := exp.RunPropagation(dspCfg(), scaled(60), 0.10)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "prune":
		r, err := exp.RunPruneStats(dspCfg())
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "verify":
		// Full-chip verification through the fault-tolerant parallel
		// engine, with the run diagnostics in the rendered report.
		v, err := xtverify.NewVerifierFromDSP(xtverify.DSPConfig(dspCfg()), xtverify.Config{
			Workers:     *workers,
			Strict:      *strict,
			Collector:   collector,
			ROMCacheCap: *romCap,

			DisablePreparedTransients: *noPrep,
			DisableScreening:          *noScreen,
		})
		if err != nil {
			return "", err
		}
		rep, err := v.RunContext(context.Background())
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := rep.WriteText(&b); err != nil {
			return "", err
		}
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				return "", err
			}
			if err := rep.Diagnostics.Metrics.WriteJSON(f); err != nil {
				f.Close()
				return "", err
			}
			if err := f.Close(); err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "wrote metrics to %s\n", *metrics)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}
