package main

import "xtverify/internal/cells"

// cellLibrary returns the library cell names in declaration order.
func cellLibrary() []string {
	lib := cells.Library()
	out := make([]string, 0, len(lib))
	for _, c := range lib {
		out = append(out, c.Name)
	}
	return out
}
