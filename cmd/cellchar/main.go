// Command cellchar characterizes the bundled 0.25 µm cell library against
// the SPICE-class engine and prints the timing-library view: NLDM delay and
// transition tables plus the deduced effective drive resistances (the paper
// Section 4.1 model inputs).
//
// Usage:
//
//	cellchar [-cell NAME] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"xtverify/internal/cells"
	"xtverify/internal/liberty"
)

func main() {
	var (
		only    = flag.String("cell", "", "characterize only this cell")
		verbose = flag.Bool("v", false, "print full delay/transition tables")
		libOut  = flag.String("lib", "", "write the characterized library to this Liberty (.lib) file")
	)
	flag.Parse()

	lib := cells.Library()
	var charTables []*cells.Timing
	fmt.Printf("%-12s %8s %8s %10s %10s %12s\n", "cell", "Wn(um)", "Wp(um)", "Rrise(ohm)", "Rfall(ohm)", "Cin(fF)")
	for _, c := range lib {
		if *only != "" && c.Name != *only {
			continue
		}
		tm, err := cells.CharacterizeCached(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellchar: %s: %v\n", c.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %8.2f %8.2f %10.0f %10.0f %12.2f\n",
			c.Name, c.Wn*1e6, c.Wp*1e6,
			tm.DriveResistance(true), tm.DriveResistance(false), c.InputCapF*1e15)
		charTables = append(charTables, tm)
		if *verbose {
			printTable("delay rise (ps)", tm.Loads, tm.Slews, tm.DelayRise)
			printTable("delay fall (ps)", tm.Loads, tm.Slews, tm.DelayFall)
			printTable("trans rise (ps)", tm.Loads, tm.Slews, tm.TransRise)
			printTable("trans fall (ps)", tm.Loads, tm.Slews, tm.TransFall)
		}
	}
	if *libOut != "" {
		f, err := os.Create(*libOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := liberty.Write(f, "xtverify_025", charTables); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote Liberty library to %s\n", *libOut)
	}
}

func printTable(title string, loads, slews []float64, tab [][]float64) {
	fmt.Printf("  %s\n  %12s", title, "load\\slew")
	for _, s := range slews {
		fmt.Printf("%9.0fps", s*1e12)
	}
	fmt.Println()
	for i, l := range loads {
		fmt.Printf("  %10.0ffF", l*1e15)
		for j := range slews {
			fmt.Printf("%11.1f", tab[i][j]*1e12)
		}
		fmt.Println()
	}
}
