// Command benchjson runs the repository benchmark suite and writes the
// results as machine-readable JSON, so the performance trajectory of the
// numeric core can be tracked across PRs (BENCH_0.json, BENCH_1.json, ...).
//
// It shells out to `go test -bench` with -benchmem, parses the standard
// benchmark output format (including custom b.ReportMetric columns such as
// errpct and speedup-x), and emits one snapshot file:
//
//	go run ./cmd/benchjson                      # auto-numbered BENCH_<n>.json
//	go run ./cmd/benchjson -bench 'Reduce' -out BENCH_pre.json
//	go run ./cmd/benchjson -compare BENCH_2.json -out /tmp/pr.json
//
// The default benchmark set is the core-kernel trio whose regression budget
// the acceptance criteria track, plus the sparse-kernel comparison and the
// multi-scenario cluster sweep; pass -bench '.' for the full suite (slow:
// every paper table/figure re-runs).
//
// With -compare, the fresh snapshot is diffed against a committed baseline
// and the command exits non-zero when any benchmark present in both slowed
// down by more than -tolerance percent ns/op (default 20%), so CI can gate
// merges on the numeric core's speed. New and dropped benchmarks are listed
// but never fail the gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench is the core-kernel set: cheap enough for routine snapshots,
// covering the hot paths (reduction, ROM transient, reference SPICE, SpMV),
// the prepared-vs-seed multi-scenario cluster sweep, the end-to-end chip
// verify with the rung-0 screen on/off (clusters/sec headline), the
// streaming-vs-materialized ingest (nets/sec and peak-heap-MB headline),
// and the incremental ECO splice vs full re-run (speedup-x headline).
const defaultBench = "BenchmarkSyMPVLReduce$|BenchmarkROMTransient$|BenchmarkSPICETransient$|BenchmarkSparseMulVec|BenchmarkGlitchClusterScenarios|BenchmarkChipVerify|BenchmarkChipStream|BenchmarkReverify$"

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the serialized form of one benchmark run.
type Snapshot struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Bench      string      `json:"bench"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	out := flag.String("out", "", "output file; default: first unused BENCH_<n>.json")
	count := flag.Int("count", 1, "go test -count value")
	compare := flag.String("compare", "", "baseline snapshot to diff against; exit non-zero on ns/op regressions beyond -tolerance")
	tolerance := flag.Float64("tolerance", 20, "allowed ns/op regression percentage for -compare")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}
	os.Stderr.Write(buf.Bytes())

	snap := Snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		Benchtime: *benchtime,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	path := *out
	if path == "" {
		for n := 0; ; n++ {
			p := fmt.Sprintf("BENCH_%d.json", n)
			if _, err := os.Stat(p); os.IsNotExist(err) {
				path = p
				break
			}
		}
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))

	if *compare != "" {
		old, err := readSnapshot(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if !compareSnapshots(os.Stderr, old, &snap, *tolerance) {
			os.Exit(1)
		}
	}
}

// readSnapshot loads a previously written BENCH_<n>.json file.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// compareSnapshots diffs ns/op — and every memory metric (a custom
// b.ReportMetric column ending in "-MB", e.g. peak-heap-MB) — for every
// benchmark name present in both snapshots, and reports false when any
// regressed beyond tolerancePct. Benchmarks present on only one side are
// listed but never fail the comparison — the set is allowed to grow between
// PRs.
func compareSnapshots(w io.Writer, old, cur *Snapshot, tolerancePct float64) bool {
	baseline := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		baseline[b.Name] = b
	}
	ok := true
	shared := 0
	for _, b := range cur.Benchmarks {
		ob, found := baseline[b.Name]
		if !found {
			fmt.Fprintf(w, "benchjson: new       %-40s %12.0f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		shared++
		delete(baseline, b.Name)
		pct := 100 * (b.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		status := "ok"
		if pct > tolerancePct {
			status = "REGRESSED"
			ok = false
		}
		fmt.Fprintf(w, "benchjson: %-9s %-40s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			status, b.Name, ob.NsPerOp, b.NsPerOp, pct)
		metrics := make([]string, 0, len(b.Metrics))
		for metric := range b.Metrics {
			metrics = append(metrics, metric)
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			v := b.Metrics[metric]
			obv, has := ob.Metrics[metric]
			if !has || !strings.HasSuffix(metric, "-MB") || obv <= 0 {
				continue
			}
			mpct := 100 * (v - obv) / obv
			mstatus := "ok"
			if mpct > tolerancePct {
				mstatus = "REGRESSED"
				ok = false
			}
			fmt.Fprintf(w, "benchjson: %-9s %-40s %12.1f -> %12.1f %s (%+.1f%%)\n",
				mstatus, b.Name, obv, v, metric, mpct)
		}
	}
	for name := range baseline {
		fmt.Fprintf(w, "benchjson: dropped   %s\n", name)
	}
	if shared == 0 {
		fmt.Fprintf(w, "benchjson: no shared benchmarks with %s; nothing compared\n", old.Date)
	}
	if !ok {
		fmt.Fprintf(w, "benchjson: ns/op regression beyond %.0f%% tolerance\n", tolerancePct)
	}
	return ok
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSyMPVLReduce-8   312   3471768 ns/op   2472744 B/op   4268 allocs/op   1.25 errpct
//
// Every column after the iteration count is a "value unit" pair; ns/op, B/op
// and allocs/op land in dedicated fields, anything else in Metrics.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, b.NsPerOp > 0
}
