// Command xtlint runs the repository's custom static-analysis suite — the
// determinism, context-propagation and observability contracts of
// internal/lint — over the named packages, multichecker style.
//
// Usage:
//
//	go run ./cmd/xtlint ./...            # the CI invocation
//	go run ./cmd/xtlint -run mapiter .   # one analyzer, one package
//	go run ./cmd/xtlint -list            # describe the suite
//
// Findings print as file:line:col: message (analyzer). Exit status is 0 for
// a clean tree, 1 when there are findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xtverify/internal/lint"
)

func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xtlint [-list] [-run name,...] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runFilter != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*runFilter, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			fmt.Fprintf(os.Stderr, "xtlint: unknown analyzer(s) in -run: %s\n", strings.Join(mapKeys(want), ", "))
			return 2
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "xtlint: %v\n", err)
		return 2
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xtlint: %v\n", err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xtlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func mapKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
