package xtverify

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xtverify/internal/romsim"
	"xtverify/internal/sympvl"
)

// TestClassifyClusterErrTable pins the sentinel mapping — in particular
// that a parent-context cancellation (client disconnect, daemon drain)
// classifies as ErrCanceled and is never conflated with ErrTimeout.
func TestClassifyClusterErrTable(t *testing.T) {
	cases := []struct {
		name string
		in   error
		is   []error
		not  []error
	}{
		{
			name: "parent cancellation",
			in:   fmt.Errorf("op: %w", context.Canceled),
			is:   []error{ErrCanceled},
			not:  []error{ErrTimeout, ErrReduction, ErrPanic},
		},
		{
			name: "bare cancellation",
			in:   context.Canceled,
			is:   []error{ErrCanceled},
			not:  []error{ErrTimeout},
		},
		{
			name: "deadline exceeded",
			in:   fmt.Errorf("op: %w", context.DeadlineExceeded),
			is:   []error{ErrTimeout},
			not:  []error{ErrCanceled, ErrReduction},
		},
		{
			name: "sympvl breakdown",
			in:   fmt.Errorf("reduce: %w", sympvl.ErrNotSPD),
			is:   []error{ErrReduction},
			not:  []error{ErrTimeout, ErrCanceled, ErrNewtonDiverged},
		},
		{
			name: "unstable model",
			in:   romsim.ErrUnstableModel,
			is:   []error{ErrReduction},
			not:  []error{ErrNewtonDiverged},
		},
		{
			name: "newton divergence",
			in:   fmt.Errorf("sim: %w", romsim.ErrNewtonDiverged),
			is:   []error{ErrNewtonDiverged},
			not:  []error{ErrReduction, ErrTimeout, ErrCanceled},
		},
		{
			name: "panic already classified",
			in:   fmt.Errorf("%w: index out of range", ErrPanic),
			is:   []error{ErrPanic},
			not:  []error{ErrTimeout, ErrCanceled},
		},
		{
			name: "unrecognized passes through",
			in:   errors.New("mystery"),
			is:   nil,
			not:  []error{ErrTimeout, ErrCanceled, ErrReduction, ErrNewtonDiverged, ErrPanic},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := classifyClusterErr(tc.in)
			for _, want := range tc.is {
				if !errors.Is(got, want) {
					t.Errorf("classify(%v) = %v, want errors.Is %v", tc.in, got, want)
				}
			}
			for _, not := range tc.not {
				if errors.Is(got, not) {
					t.Errorf("classify(%v) = %v, must NOT be %v", tc.in, got, not)
				}
			}
		})
	}
}

// TestRungRetryRecoversTransient injects a one-shot timeout into a single
// cluster's fast path: with RungRetries the same rung must be re-attempted
// after backoff and succeed, leaving the cluster verified on the fast rung
// (not degraded), with the retry visible in the rung_retries counter.
func TestRungRetryRecoversTransient(t *testing.T) {
	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	clean, err := engineVerifier(t, base).Run()
	if err != nil {
		t.Fatal(err)
	}
	target := clean.Diagnostics.Clusters[len(clean.Diagnostics.Clusters)/2].Victim

	cfg := base
	cfg.Workers = 4
	cfg.RungRetries = 2
	cfg.RungRetryBackoff = time.Millisecond
	cfg.Collector = NewMetricsCollector()
	v := engineVerifier(t, cfg)
	var failures atomic.Int64
	failures.Store(1)
	var attemptsSeen atomic.Int64
	v.faultHook = func(victim string, stage FallbackStage) error {
		if victim != target || stage != StageReduced {
			return nil
		}
		attemptsSeen.Add(1)
		if failures.Add(-1) >= 0 {
			return fmt.Errorf("injected overload: %w", context.DeadlineExceeded)
		}
		return nil
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := attemptsSeen.Load(); got != 2 {
		t.Errorf("fast rung attempted %d times, want 2 (fail + retry)", got)
	}
	for _, c := range rep.Diagnostics.Clusters {
		if c.Victim == target {
			if c.Err != nil || c.Stage != StageReduced {
				t.Errorf("victim %s: stage %s err %v, want clean recovery on the fast rung", target, c.Stage, c.Err)
			}
		}
	}
	if rep.Diagnostics.Degraded != 0 || rep.Diagnostics.Unverified != 0 {
		t.Errorf("degraded %d unverified %d, want 0/0 (retry should absorb the transient)",
			rep.Diagnostics.Degraded, rep.Diagnostics.Unverified)
	}
	if got := rep.Diagnostics.Metrics.Counters["rung_retries"]; got != 1 {
		t.Errorf("rung_retries = %d, want 1", got)
	}
	compareViolations(t, rep.Violations, clean.Violations, "", 0)
}

// TestCanceledAttemptNotRetried: an attempt that fails because the parent
// was canceled must classify as ErrCanceled and must not consume retry
// budget — a disconnected client's job is abandoned, not hammered.
func TestCanceledAttemptNotRetried(t *testing.T) {
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03,
		RungRetries: 3, RungRetryBackoff: time.Millisecond,
		DisableScreening: true} // every cluster must reach the ladder
	cfg.Collector = NewMetricsCollector()
	v := engineVerifier(t, cfg)
	var calls atomic.Int64
	v.faultHook = func(victim string, stage FallbackStage) error {
		calls.Add(1)
		return fmt.Errorf("client went away: %w", context.Canceled)
	}
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every cluster fails all three rungs with a cancellation; none may be
	// retried (3 rungs × clusters, no extra calls).
	clusters := len(rep.Diagnostics.Clusters)
	if clusters == 0 {
		t.Fatal("no clusters analyzed")
	}
	if got := calls.Load(); got != int64(3*clusters) {
		t.Errorf("attempt calls = %d, want %d (3 rungs × %d clusters, zero retries)", got, 3*clusters, clusters)
	}
	if got := rep.Diagnostics.Metrics.Counters["rung_retries"]; got != 0 {
		t.Errorf("rung_retries = %d, want 0 for canceled attempts", got)
	}
	for _, c := range rep.Diagnostics.Clusters {
		if c.Err == nil {
			t.Fatalf("victim %s verified despite injected cancellation", c.Victim)
		}
		if !errors.Is(c.Err, ErrCanceled) {
			t.Errorf("victim %s: %v, want ErrCanceled", c.Victim, c.Err)
		}
		if errors.Is(c.Err, ErrTimeout) {
			t.Errorf("victim %s reported as ErrTimeout — cancellation conflated with deadline", c.Victim)
		}
	}
}

// renderReportStore is renderReport with a persistent store attached.
func renderReportStore(t *testing.T, cfg Config, store *ROMStore) string {
	t.Helper()
	cfg.ROMStore = store
	return renderReport(t, cfg, true)
}

// TestPersistentStoreWarmColdIdentity is the durability acceptance check:
// a warm run against a populated disk store must render a byte-identical
// report to the cold run that populated it, and a corrupted store must
// degrade to recompute — counted, byte-identical, never fatal.
func TestPersistentStoreWarmColdIdentity(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenROMStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, Workers: 4}

	cold := renderReportStore(t, cfg, store)
	st := store.Stats()
	if st.Writes == 0 {
		t.Fatalf("cold run wrote no entries: %+v", st)
	}

	warm := renderReportStore(t, cfg, store)
	if warm != cold {
		t.Errorf("warm persistent-cache report differs from cold:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	st2 := store.Stats()
	if st2.Hits == 0 {
		t.Errorf("warm run hit nothing: %+v", st2)
	}

	// Flip one byte in every entry: the store must discard every entry,
	// recompute, and still render the identical report.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil || len(raw) == 0 {
			t.Fatalf("read %s: %v", path, err)
		}
		raw[len(raw)/3] ^= 0x10
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no entries to corrupt")
	}
	cfg.Collector = NewMetricsCollector()
	cfg.ROMStore = store
	v := engineVerifier(t, cfg)
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatalf("run against corrupted store failed: %v", err)
	}
	if got := rep.Diagnostics.Metrics.Counters["cache_corrupt_discarded"]; got == 0 {
		t.Errorf("cache_corrupt_discarded = 0 after corrupting %d entries (store stats %+v)", corrupted, store.Stats())
	}
	rep.Diagnostics = nil
	gotText := reportText(t, rep)
	if gotText != cold {
		t.Errorf("report after corruption differs from cold run:\n--- cold ---\n%s--- corrupted ---\n%s", cold, gotText)
	}
	if store.Stats().CorruptDiscarded == 0 {
		t.Error("store reported no corrupt discards")
	}
}

// reportText renders a report's WriteText output.
func reportText(t *testing.T, rep *Report) string {
	t.Helper()
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSharedROMCacheAcrossRuns: a second run against one SharedROMCache
// must be served from memory (hits delta > 0, misses delta 0) and stay
// byte-identical.
func TestSharedROMCacheAcrossRuns(t *testing.T) {
	cache := NewROMCache(DefaultROMCacheCap)
	cfg := Config{Model: FixedResistance, CapRatioThreshold: 0.03, SharedROMCache: cache}
	first := renderReport(t, cfg, true)

	cfg2 := cfg
	cfg2.Collector = NewMetricsCollector()
	v := engineVerifier(t, cfg2)
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Diagnostics
	if d.ROMCacheMisses != 0 || d.ROMCacheHits == 0 {
		t.Errorf("second shared-cache run: hits %d misses %d, want all-hit", d.ROMCacheHits, d.ROMCacheMisses)
	}
	rep.Diagnostics = nil
	if got := reportText(t, rep); got != first {
		t.Errorf("shared-cache warm report differs:\n--- first ---\n%s--- second ---\n%s", first, got)
	}
}

// TestROMCacheCapConfigurable: a capacity-1 cache must evict (hits stay
// rare) yet still render the identical report — capacity is a performance
// knob, never a correctness one.
func TestROMCacheCapConfigurable(t *testing.T) {
	base := Config{Model: FixedResistance, CapRatioThreshold: 0.03}
	want := renderReport(t, base, false)
	tiny := base
	tiny.ROMCacheCap = 1
	tiny.Collector = NewMetricsCollector()
	v := engineVerifier(t, tiny)
	rep, err := v.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Diagnostics.Metrics.Counters["rom_cache_evictions"]; got == 0 {
		t.Errorf("capacity-1 cache reported no evictions (counters %v)", rep.Diagnostics.Metrics.Counters)
	}
	rep.Diagnostics = nil
	if got := reportText(t, rep); got != want {
		t.Errorf("capacity-1 report differs from default:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
