// metrics.go is the public face of the observability layer (internal/obs):
// the collector callers hand to Config, and the JSON snapshot that lands in
// Report.Diagnostics.Metrics and behind the CLIs' -metrics-out flag.
package xtverify

import "xtverify/internal/obs"

// MetricsCollector aggregates one verification run's observability data:
// per-cluster, per-phase span timings (prune → fingerprint → reduce →
// diagonalize → transient), engine counters (Lanczos iterations, Newton
// iterations/divergences, Woodbury solves, fallback rungs, ROM-cache
// hits/misses/evictions) and the worker-pool in-flight gauge.
//
// Create one per run with NewMetricsCollector and set it on Config; the
// engine fills it and stores its final Snapshot in Diagnostics.Metrics.
// Snapshot may also be called concurrently mid-run (the CLIs' expvar
// endpoint does) for a live view. A nil collector disables instrumentation
// at near-zero cost.
type MetricsCollector = obs.Collector

// MetricsSnapshot is the frozen, JSON-serializable metrics view of one run
// (schema obs.SchemaVersion; see the Observability section of DESIGN.md).
// Counter totals are deterministic across worker counts; durations, the
// queue gauge and per-cluster counter attribution are run-dependent.
type MetricsSnapshot = obs.Snapshot

// NewMetricsCollector returns an empty collector for one run.
func NewMetricsCollector() *MetricsCollector { return obs.NewCollector() }
